// Chord baseline: ring intervals, successor correctness against brute
// force, finger-table lookups, virtual nodes, and the underlay bridge.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "chord/chord.hpp"
#include "chord/underlay.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/shortest_path.hpp"
#include "topology/presets.hpp"

namespace gred::chord {
namespace {

using topology::EdgeNetwork;
using topology::ServerId;

EdgeNetwork small_net() {
  return topology::uniform_edge_network(topology::ring(6), 2);
}

// ---------- ring interval ----------

TEST(RingIntervalTest, NoWrap) {
  EXPECT_TRUE(in_ring_interval(10, 20, 15));
  EXPECT_TRUE(in_ring_interval(10, 20, 20));   // right-closed
  EXPECT_FALSE(in_ring_interval(10, 20, 10));  // left-open
  EXPECT_FALSE(in_ring_interval(10, 20, 25));
  EXPECT_FALSE(in_ring_interval(10, 20, 5));
}

TEST(RingIntervalTest, Wrapping) {
  const RingId near_max = ~RingId{0} - 5;
  EXPECT_TRUE(in_ring_interval(near_max, 10, 3));
  EXPECT_TRUE(in_ring_interval(near_max, 10, ~RingId{0}));
  EXPECT_TRUE(in_ring_interval(near_max, 10, 10));
  EXPECT_FALSE(in_ring_interval(near_max, 10, 100));
  EXPECT_FALSE(in_ring_interval(near_max, 10, near_max));
}

TEST(RingIntervalTest, FullRingWhenEqual) {
  EXPECT_TRUE(in_ring_interval(7, 7, 0));
  EXPECT_TRUE(in_ring_interval(7, 7, 7));
  EXPECT_TRUE(in_ring_interval(7, 7, 12345));
}

// ---------- construction ----------

TEST(ChordBuildTest, RejectsEmptyNetwork) {
  EdgeNetwork empty(topology::ring(3));
  EXPECT_FALSE(ChordRing::build(empty).ok());
}

TEST(ChordBuildTest, RejectsBadOptions) {
  const EdgeNetwork net = small_net();
  ChordOptions opt;
  opt.virtual_nodes = 0;
  EXPECT_FALSE(ChordRing::build(net, opt).ok());
  opt.virtual_nodes = 1;
  opt.finger_bits = 0;
  EXPECT_FALSE(ChordRing::build(net, opt).ok());
  opt.finger_bits = 65;
  EXPECT_FALSE(ChordRing::build(net, opt).ok());
}

TEST(ChordBuildTest, RingSizeMatchesVirtualNodes) {
  const EdgeNetwork net = small_net();  // 12 servers
  auto r1 = ChordRing::build(net);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().ring_size(), 12u);

  ChordOptions opt;
  opt.virtual_nodes = 4;
  auto r4 = ChordRing::build(net, opt);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.value().ring_size(), 48u);
}

// ---------- successor correctness ----------

TEST(ChordSuccessorTest, MatchesBruteForce) {
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::grid(4, 4), 3);
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  const ChordRing& ring = built.value();

  // Brute force: recompute every server's ring id and find the
  // successor by scanning.
  std::map<RingId, ServerId> ids;
  for (const auto& s : net.all_servers()) {
    const RingId id =
        crypto::DataKey("chord-node-" + std::to_string(s.id) + "-0")
            .prefix64();
    ids[id] = s.id;
  }
  auto brute_successor = [&ids](RingId key) {
    auto it = ids.lower_bound(key);
    if (it == ids.end()) it = ids.begin();
    return it->second;
  };

  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const RingId key = rng.next_u64();
    EXPECT_EQ(ring.successor_server(key), brute_successor(key));
  }
}

TEST(ChordSuccessorTest, OwnIdMapsToSelf) {
  const EdgeNetwork net = small_net();
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  for (const auto& s : net.all_servers()) {
    const RingId id =
        crypto::DataKey("chord-node-" + std::to_string(s.id) + "-0")
            .prefix64();
    EXPECT_EQ(built.value().successor_server(id), s.id);
  }
}

// ---------- lookup ----------

class ChordLookupTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordLookupTest, LookupFindsSuccessorFromAnyOrigin) {
  const std::size_t switches = GetParam();
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::ring(switches), 5);
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  const ChordRing& ring = built.value();

  Rng rng(23 + switches);
  for (int trial = 0; trial < 200; ++trial) {
    const RingId key = rng.next_u64();
    const ServerId origin = rng.next_below(net.server_count());
    const LookupTrace trace = ring.lookup(origin, key);
    EXPECT_EQ(trace.home, ring.successor_server(key));
    // Hop chain must be consistent.
    ServerId cur = origin;
    for (const OverlayHop& hop : trace.hops) {
      EXPECT_EQ(hop.from, cur);
      cur = hop.to;
    }
    EXPECT_EQ(cur, trace.home);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordLookupTest,
                         ::testing::Values(3, 6, 12, 20));

TEST(ChordLookupHopsTest, LogarithmicOverlayHops) {
  // With n ring nodes, lookups take O(log n) overlay hops; check the
  // average is well under log2(n) + a small constant.
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::ring(50), 10);  // 500 peers
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  Rng rng(31);
  double total_hops = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const LookupTrace trace = built.value().lookup(
        rng.next_below(net.server_count()), rng.next_u64());
    total_hops += static_cast<double>(trace.overlay_hop_count());
  }
  const double avg = total_hops / trials;
  EXPECT_LT(avg, 12.0);  // log2(500) ~ 9
  EXPECT_GT(avg, 2.0);   // and it is genuinely multi-hop
}

TEST(ChordLookupTest, KeyOwnedByOriginNeedsNoHops) {
  const EdgeNetwork net = small_net();
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  // Pick a key exactly equal to some node's ring id: its successor is
  // that node; looking it up *from* that node should need no hops.
  const ServerId server = 3;
  const RingId id =
      crypto::DataKey("chord-node-3-0").prefix64();
  const LookupTrace trace = built.value().lookup(server, id);
  EXPECT_EQ(trace.home, server);
  EXPECT_EQ(trace.overlay_hop_count(), 0u);
}

TEST(ChordLookupTest, UnknownOriginStillAnswers) {
  const EdgeNetwork net = small_net();
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  const LookupTrace trace =
      built.value().lookup(/*from=*/9999, /*key=*/42);
  EXPECT_EQ(trace.home, built.value().successor_server(42));
  EXPECT_EQ(trace.overlay_hop_count(), 0u);
}

// ---------- virtual nodes & balance ----------

TEST(ChordBalanceTest, VirtualNodesImproveBalance) {
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::ring(10), 10);  // 100 servers
  ChordOptions v1;
  ChordOptions v8;
  v8.virtual_nodes = 8;
  auto r1 = ChordRing::build(net, v1);
  auto r8 = ChordRing::build(net, v8);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());

  std::vector<RingId> keys;
  Rng rng(41);
  for (int i = 0; i < 50000; ++i) keys.push_back(rng.next_u64());

  const auto loads1 = chord_key_loads(r1.value(), net, keys);
  const auto loads8 = chord_key_loads(r8.value(), net, keys);
  EXPECT_LT(max_over_avg(loads8), max_over_avg(loads1));
}

TEST(ChordBalanceTest, AllKeysAssigned) {
  const EdgeNetwork net = small_net();
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  std::vector<RingId> keys;
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.next_u64());
  const auto loads = chord_key_loads(built.value(), net, keys);
  std::size_t total = 0;
  for (std::size_t l : loads) total += l;
  EXPECT_EQ(total, 1000u);
}

TEST(ChordFingerTest, EntriesAreLogarithmic) {
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::ring(40), 10);  // 400 peers
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  // Distinct finger targets per node ~ log2(400) ~ 8.6.
  const std::size_t entries = built.value().finger_entries(0);
  EXPECT_GE(entries, 4u);
  EXPECT_LE(entries, 16u);
}

// ---------- underlay bridge ----------

TEST(ChordUnderlayTest, PhysicalHopsAtLeastShortest) {
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::ring(12), 4);
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  Rng rng(51);
  for (int trial = 0; trial < 200; ++trial) {
    const ServerId origin = rng.next_below(net.server_count());
    const ChordRouteReport r =
        measure_lookup(built.value(), net, apsp, origin, rng.next_u64());
    EXPECT_GE(r.physical_hops, r.shortest_hops);
    EXPECT_GE(r.stretch, 1.0 - 1e-9);
  }
}

TEST(ChordUnderlayTest, StretchExceedsOneOnAverage) {
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::ring(20), 10);
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());
  auto built = ChordRing::build(net);
  ASSERT_TRUE(built.ok());
  Rng rng(52);
  double total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    total += measure_lookup(built.value(), net, apsp,
                            rng.next_below(net.server_count()),
                            rng.next_u64())
                 .stretch;
  }
  // The paper reports Chord stretch > 3.5; on a 20-ring it is clearly
  // above 1.5 already.
  EXPECT_GT(total / trials, 1.5);
}

}  // namespace
}  // namespace gred::chord
