// Hotspot-traffic machinery: the per-switch hot-key cache (unit +
// protocol integration + coherence), the switch load tracker, the
// load-driven range extension, the Zipf+spatial workload generator,
// and the delay model's cache path.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/delay_experiment.hpp"
#include "core/system.hpp"
#include "crypto/data_key.hpp"
#include "obs/switch_load.hpp"
#include "sden/hot_key_cache.hpp"
#include "topology/presets.hpp"
#include "workload/hotspot.hpp"

namespace gred::core {
namespace {

using sden::HotKeyCache;
using topology::SwitchId;

GredSystem make_system(graph::Graph g, std::size_t per_switch,
                       VirtualSpaceOptions opt = {}) {
  auto sys = GredSystem::create(
      topology::uniform_edge_network(std::move(g), per_switch), opt);
  EXPECT_TRUE(sys.ok());
  return std::move(sys).value();
}

crypto::Digest digest_of(const std::string& id) {
  return crypto::DataKey(id).digest();
}

// ---------- HotKeyCache unit ----------

TEST(HotKeyCacheTest, InsertProbeRoundTrip) {
  HotKeyCache cache(4, 2);
  const crypto::Digest d = digest_of("a");
  cache.insert(1, d, "payload-a", 3, 7);
  const HotKeyCache::Entry* e = cache.probe(1, d);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, "payload-a");
  EXPECT_EQ(e->home, 3u);
  EXPECT_EQ(e->responder, 7u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.insertions(), 1u);
}

TEST(HotKeyCacheTest, MissOnWrongSwitchOrDigest) {
  HotKeyCache cache(4, 2);
  cache.insert(1, digest_of("a"), "p", 0, 0);
  EXPECT_EQ(cache.probe(2, digest_of("a")), nullptr);  // other switch
  EXPECT_EQ(cache.probe(1, digest_of("b")), nullptr);  // other id
  // Out-of-range switches miss cheaply, before the tally.
  EXPECT_EQ(cache.probe(99, digest_of("a")), nullptr);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(HotKeyCacheTest, DisabledAlwaysMisses) {
  HotKeyCache cache(2, 2);
  cache.insert(0, digest_of("a"), "p", 0, 0);
  cache.set_enabled(false);
  EXPECT_EQ(cache.probe(0, digest_of("a")), nullptr);
  cache.set_enabled(true);
  EXPECT_NE(cache.probe(0, digest_of("a")), nullptr);
}

TEST(HotKeyCacheTest, EpochInvalidationDropsEverything) {
  HotKeyCache cache(2, 2);
  cache.insert(0, digest_of("a"), "p", 0, 0);
  cache.insert(1, digest_of("b"), "q", 0, 0);
  cache.invalidate_all();
  EXPECT_EQ(cache.probe(0, digest_of("a")), nullptr);
  EXPECT_EQ(cache.probe(1, digest_of("b")), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
  // Refill after the bump works.
  cache.insert(0, digest_of("a"), "p2", 0, 0);
  const HotKeyCache::Entry* e = cache.probe(0, digest_of("a"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, "p2");
}

TEST(HotKeyCacheTest, InvalidateIdDropsOnlyThatId) {
  HotKeyCache cache(2, 2);
  cache.insert(0, digest_of("a"), "p", 0, 0);
  cache.insert(0, digest_of("b"), "q", 0, 0);
  cache.insert(1, digest_of("a"), "p", 0, 0);
  cache.invalidate_id(digest_of("a"));
  EXPECT_EQ(cache.probe(0, digest_of("a")), nullptr);
  EXPECT_EQ(cache.probe(1, digest_of("a")), nullptr);
  EXPECT_NE(cache.probe(0, digest_of("b")), nullptr);
}

TEST(HotKeyCacheTest, RefreshInPlaceUpdatesPayload) {
  HotKeyCache cache(1, 2);
  cache.insert(0, digest_of("a"), "old", 0, 0);
  cache.insert(0, digest_of("a"), "new", 1, 2);
  const HotKeyCache::Entry* e = cache.probe(0, digest_of("a"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, "new");
  EXPECT_EQ(e->home, 1u);
  EXPECT_EQ(e->responder, 2u);
}

TEST(HotKeyCacheTest, ClockEvictionKeepsReferencedEntry) {
  HotKeyCache cache(1, 2);
  cache.insert(0, digest_of("a"), "pa", 0, 0);
  cache.insert(0, digest_of("b"), "pb", 0, 0);
  // Overflowing the 2-way set sweeps both reference bits and evicts
  // one of the residents; the new entry is always present.
  cache.insert(0, digest_of("c"), "pc", 0, 0);
  ASSERT_NE(cache.probe(0, digest_of("c")), nullptr);  // also refs "c"
  // The next fill must evict the unreferenced survivor, never the
  // just-referenced "c".
  cache.insert(0, digest_of("d"), "pd", 0, 0);
  EXPECT_NE(cache.probe(0, digest_of("c")), nullptr);
  EXPECT_NE(cache.probe(0, digest_of("d")), nullptr);
  EXPECT_EQ(cache.probe(0, digest_of("a")), nullptr);
  EXPECT_EQ(cache.probe(0, digest_of("b")), nullptr);
}

TEST(HotKeyCacheTest, EnsureSwitchesKeepsEntries) {
  HotKeyCache cache(1, 2);
  cache.insert(0, digest_of("a"), "p", 0, 0);
  cache.ensure_switches(5);
  EXPECT_EQ(cache.switch_count(), 5u);
  EXPECT_NE(cache.probe(0, digest_of("a")), nullptr);
  cache.insert(4, digest_of("b"), "q", 0, 0);
  EXPECT_NE(cache.probe(4, digest_of("b")), nullptr);
}

TEST(HotKeyCacheTest, StatsAndClear) {
  HotKeyCache cache(1, 1);
  cache.insert(0, digest_of("a"), "p", 0, 0);
  cache.probe(0, digest_of("a"));
  cache.probe(0, digest_of("b"));
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
  cache.reset_stats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
  cache.clear();
  EXPECT_EQ(cache.probe(0, digest_of("a")), nullptr);
}

// ---------- SwitchLoadTracker ----------

TEST(SwitchLoadTrackerTest, RecordRollEwma) {
  obs::SwitchLoadTracker t(3, 0.5);
  for (int i = 0; i < 10; ++i) t.record(0);
  t.record(2);
  EXPECT_EQ(t.window_count(0), 10u);
  EXPECT_EQ(t.window_count(1), 0u);
  EXPECT_EQ(t.roll_window(), 11u);
  EXPECT_EQ(t.window_count(0), 0u);  // window zeroed
  EXPECT_DOUBLE_EQ(t.ewma(0), 5.0);  // 0.5 * 10
  EXPECT_DOUBLE_EQ(t.ewma(2), 0.5);
  // Second empty window halves the EWMA.
  EXPECT_EQ(t.roll_window(), 0u);
  EXPECT_DOUBLE_EQ(t.ewma(0), 2.5);
}

TEST(SwitchLoadTrackerTest, OutOfRangeRecordDropped) {
  obs::SwitchLoadTracker t(2);
  t.record(7);  // not UB, just dropped
  EXPECT_EQ(t.roll_window(), 0u);
  EXPECT_DOUBLE_EQ(t.ewma(7), 0.0);
}

TEST(SwitchLoadTrackerTest, MeanAndMaxEwma) {
  obs::SwitchLoadTracker t(3, 1.0);
  for (int i = 0; i < 9; ++i) t.record(1);
  t.roll_window();
  EXPECT_DOUBLE_EQ(t.max_ewma(), 9.0);
  EXPECT_DOUBLE_EQ(t.mean_ewma(), 3.0);
  EXPECT_DOUBLE_EQ(t.mean_ewma({0, 2}), 0.0);
  EXPECT_DOUBLE_EQ(t.mean_ewma({1}), 9.0);
}

TEST(SwitchLoadTrackerTest, EnsureSwitchesKeepsCounts) {
  obs::SwitchLoadTracker t(1, 1.0);
  t.record(0);
  t.ensure_switches(4);
  EXPECT_EQ(t.switch_count(), 4u);
  EXPECT_EQ(t.window_count(0), 1u);
  t.record(3);
  EXPECT_EQ(t.roll_window(), 2u);
  t.reset();
  EXPECT_DOUBLE_EQ(t.ewma(0), 0.0);
}

// ---------- protocol integration ----------

TEST(ProtocolCacheTest, SecondRetrieveServedFromCache) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  sys.network().enable_hot_key_cache();
  ASSERT_TRUE(sys.place("hot-item", "the-payload", 0).ok());

  auto first = sys.retrieve("hot-item", 5);
  ASSERT_TRUE(first.ok() && first.value().route.found);
  EXPECT_FALSE(first.value().served_from_cache);

  auto second = sys.retrieve("hot-item", 5);
  ASSERT_TRUE(second.ok() && second.value().route.found);
  EXPECT_TRUE(second.value().served_from_cache);
  EXPECT_EQ(second.value().route.payload, "the-payload");
  EXPECT_EQ(second.value().route.responder, first.value().route.responder);
  EXPECT_EQ(second.value().ingress, 5u);
  // A different ingress has its own (cold) cache set.
  auto elsewhere = sys.retrieve("hot-item", 9);
  ASSERT_TRUE(elsewhere.ok() && elsewhere.value().route.found);
  EXPECT_FALSE(elsewhere.value().served_from_cache);
}

TEST(ProtocolCacheTest, PlaceOverwriteInvalidatesCachedPayload) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  sys.network().enable_hot_key_cache();
  ASSERT_TRUE(sys.place("d", "v1", 0).ok());
  ASSERT_TRUE(sys.retrieve("d", 3).ok());  // fill
  ASSERT_TRUE(sys.retrieve("d", 3).value().served_from_cache);

  ASSERT_TRUE(sys.place("d", "v2", 1).ok());
  auto after = sys.retrieve("d", 3);
  ASSERT_TRUE(after.ok() && after.value().route.found);
  EXPECT_FALSE(after.value().served_from_cache);  // entry dropped
  EXPECT_EQ(after.value().route.payload, "v2");
  // And the refill serves the new payload.
  auto refilled = sys.retrieve("d", 3);
  EXPECT_TRUE(refilled.value().served_from_cache);
  EXPECT_EQ(refilled.value().route.payload, "v2");
}

TEST(ProtocolCacheTest, RemoveInvalidatesCachedAnswer) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  sys.network().enable_hot_key_cache();
  ASSERT_TRUE(sys.place("d", "v", 0).ok());
  ASSERT_TRUE(sys.retrieve("d", 2).ok());  // fill
  ASSERT_TRUE(sys.retrieve("d", 2).value().served_from_cache);

  ASSERT_TRUE(sys.remove("d", 0).ok());
  auto gone = sys.retrieve("d", 2);
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone.value().route.found);  // never a stale cached hit
  EXPECT_FALSE(gone.value().served_from_cache);
}

TEST(ProtocolCacheTest, RangeExtensionNeverServesStaleHome) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  sys.network().enable_hot_key_cache();
  Rng rng(31);
  std::vector<std::string> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back("ext-" + std::to_string(i));
    ASSERT_TRUE(sys.place(ids.back(), "pay-" + ids.back(),
                          rng.next_below(16))
                    .ok());
  }
  // Warm every id at a fixed ingress.
  for (const std::string& id : ids) ASSERT_TRUE(sys.retrieve(id, 0).ok());

  // Extend some server's range (moves half its items to a neighbor).
  ASSERT_TRUE(sys.extend_range(0).ok());

  // Every retrieval still returns the right payload; the first pass
  // after the extension re-routes (the epoch bump dropped every entry).
  for (const std::string& id : ids) {
    auto r = sys.retrieve(id, 0);
    ASSERT_TRUE(r.ok() && r.value().route.found) << id;
    EXPECT_EQ(r.value().route.payload, "pay-" + id);
  }
}

TEST(ProtocolCacheTest, CachedAndUncachedAgree) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  HotKeyCache& cache = sys.network().enable_hot_key_cache();
  Rng rng(32);
  std::vector<std::string> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back("agree-" + std::to_string(i));
    ASSERT_TRUE(
        sys.place(ids.back(), "p" + std::to_string(i), rng.next_below(16))
            .ok());
  }
  for (const std::string& id : ids) {
    const SwitchId ingress = rng.next_below(16);
    ASSERT_TRUE(sys.retrieve(id, ingress).ok());  // warm
    auto cached = sys.retrieve(id, ingress);
    cache.set_enabled(false);
    auto uncached = sys.retrieve(id, ingress);
    cache.set_enabled(true);
    ASSERT_TRUE(cached.ok() && uncached.ok());
    EXPECT_TRUE(cached.value().served_from_cache);
    EXPECT_FALSE(uncached.value().served_from_cache);
    EXPECT_EQ(cached.value().route.found, uncached.value().route.found);
    EXPECT_EQ(cached.value().route.payload, uncached.value().route.payload);
    EXPECT_EQ(cached.value().route.responder,
              uncached.value().route.responder);
  }
}

TEST(ProtocolCacheTest, LoadTrackerObservesRetrievals) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  obs::SwitchLoadTracker tracker(16);
  sys.network().set_load_tracker(&tracker);
  sys.network().enable_hot_key_cache();
  ASSERT_TRUE(sys.place("t", "v", 0).ok());
  ASSERT_TRUE(sys.retrieve("t", 4).ok());  // routed: counts at the home
  ASSERT_TRUE(sys.retrieve("t", 4).ok());  // cached: counts at ingress 4
  EXPECT_EQ(tracker.roll_window(), 2u);
  sys.network().set_load_tracker(nullptr);
}

// ---------- load-driven extension ----------

TEST(ExtendForLoadTest, TriggersOnHotSwitch) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  Rng rng(33);
  std::vector<std::string> ids;
  for (int i = 0; i < 80; ++i) {
    ids.push_back("load-" + std::to_string(i));
    ASSERT_TRUE(sys.place(ids.back(), "pl-" + ids.back(),
                          rng.next_below(16))
                    .ok());
  }
  obs::SwitchLoadTracker tracker(16);
  const SwitchId hot = 5;
  for (int i = 0; i < 200; ++i) tracker.record(hot);
  tracker.record(1);
  tracker.roll_window();

  LoadExtensionOptions opts;
  opts.hot_factor = 2.0;
  auto performed = sys.extend_for_load(tracker, opts);
  ASSERT_TRUE(performed.ok());
  EXPECT_GE(performed.value(), 1u);
  // The hot switch now delegates part of some server's range.
  EXPECT_FALSE(sys.network().switch_at(hot).table().rewrites().empty());
  // Every item is still retrievable with its payload intact.
  for (const std::string& id : ids) {
    auto r = sys.retrieve(id, 3);
    ASSERT_TRUE(r.ok() && r.value().route.found) << id;
    EXPECT_EQ(r.value().route.payload, "pl-" + id);
  }
}

// Regression: the tracker is sized at construction and record()
// silently drops out-of-range ids, so a switch joining after the
// tracker was attached used to be invisible to extend_for_load no
// matter how hot it ran. SdenNetwork::add_switch now grows the
// attached tracker alongside the hot-key cache.
TEST(ExtendForLoadTest, PostJoinSwitchIsVisibleToLoadExtension) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  obs::SwitchLoadTracker tracker(16);
  sys.network().set_load_tracker(&tracker);

  auto added = sys.add_switch({5, 10}, /*servers=*/2);
  ASSERT_TRUE(added.ok()) << added.error().to_string();
  const SwitchId joined = added.value();
  // The join must grow the tracker, or every sample below is dropped.
  ASSERT_EQ(tracker.switch_count(), sys.network().switch_count());

  // Items homed at the joined switch, so routed retrievals record
  // their load there.
  std::vector<std::string> hot_ids;
  for (int i = 0; i < 600 && hot_ids.size() < 4; ++i) {
    const std::string id = "join-" + std::to_string(i);
    const crypto::SpacePoint pos = crypto::DataKey(id).position();
    if (sys.controller().home_switch({pos.x, pos.y}) == joined) {
      ASSERT_TRUE(sys.place(id, "pl-" + id, 0).ok());
      hot_ids.push_back(id);
    }
  }
  ASSERT_FALSE(hot_ids.empty()) << "no key homed at the joined switch";
  for (int i = 0; i < 200; ++i) {
    const std::string& id = hot_ids[static_cast<std::size_t>(i) %
                                    hot_ids.size()];
    auto r = sys.retrieve(id, 1);
    ASSERT_TRUE(r.ok() && r.value().route.found) << id;
  }
  // Mild uniform background load keeps the pre-join switches cold.
  for (SwitchId s = 0; s < 16; ++s) {
    for (int i = 0; i < 10; ++i) tracker.record(s);
  }
  tracker.roll_window();

  LoadExtensionOptions opts;
  opts.hot_factor = 2.0;
  auto performed = sys.extend_for_load(tracker, opts);
  ASSERT_TRUE(performed.ok()) << performed.error().to_string();
  EXPECT_GE(performed.value(), 1u);
  // The extension landed on the post-join switch.
  EXPECT_FALSE(sys.network().switch_at(joined).table().rewrites().empty());
  sys.network().set_load_tracker(nullptr);
}

TEST(ExtendForLoadTest, UniformLoadIsANoop) {
  GredSystem sys = make_system(topology::grid(3, 3), 2);
  obs::SwitchLoadTracker tracker(9);
  for (std::size_t s = 0; s < 9; ++s) {
    for (int i = 0; i < 10; ++i) tracker.record(s);
  }
  tracker.roll_window();
  auto performed = sys.extend_for_load(tracker);
  ASSERT_TRUE(performed.ok());
  EXPECT_EQ(performed.value(), 0u);
}

TEST(ExtendForLoadTest, RejectsBadOptions) {
  GredSystem sys = make_system(topology::ring(4), 1);
  obs::SwitchLoadTracker tracker(4);
  LoadExtensionOptions bad;
  bad.hot_factor = 0.5;
  EXPECT_FALSE(sys.extend_for_load(tracker, bad).ok());
  bad.hot_factor = std::nan("");
  EXPECT_FALSE(sys.extend_for_load(tracker, bad).ok());
  // max_extensions == 0 is a valid "do nothing" budget, not an error.
  LoadExtensionOptions none;
  none.max_extensions = 0;
  auto r = sys.extend_for_load(tracker, none);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
}

// ---------- hotspot workload ----------

workload::HotspotOptions small_options() {
  workload::HotspotOptions o;
  o.universe = 200;
  o.grid = 2;
  o.zipf_exponent = 1.1;
  o.diurnal_period_ms = 10.0;
  return o;
}

std::vector<geometry::Point2D> quadrant_switches() {
  // One switch per 2x2 region, at the region centers.
  return {{0.25, 0.25}, {0.75, 0.25}, {0.25, 0.75}, {0.75, 0.75}};
}

TEST(HotspotWorkloadTest, RegionOfClampsAndPartitions) {
  const workload::HotspotWorkload w(small_options(), quadrant_switches());
  EXPECT_EQ(w.region_of({0.1, 0.1}), 0u);
  EXPECT_EQ(w.region_of({0.9, 0.1}), 1u);
  EXPECT_EQ(w.region_of({0.1, 0.9}), 2u);
  EXPECT_EQ(w.region_of({0.9, 0.9}), 3u);
  // Out-of-range and NaN inputs clamp instead of indexing out of
  // bounds.
  EXPECT_EQ(w.region_of({-0.5, 2.0}), 2u);
  EXPECT_EQ(w.region_of({std::nan(""), 0.1}), 0u);
}

TEST(HotspotWorkloadTest, KeyRegionsMatchHashedPositions) {
  const workload::HotspotWorkload w(small_options(), quadrant_switches());
  for (std::size_t k = 0; k < w.ids().size(); ++k) {
    const crypto::SpacePoint p = crypto::DataKey(w.ids()[k]).position();
    EXPECT_EQ(w.key_region(k), w.region_of({p.x, p.y}));
  }
  // 200 hashed keys land in all four quadrants.
  EXPECT_EQ(w.occupied_region_count(), 4u);
}

TEST(HotspotWorkloadTest, ActiveRegionRotates) {
  const workload::HotspotWorkload w(small_options(), quadrant_switches());
  const std::size_t occ = w.occupied_region_count();
  const std::size_t first = w.active_region(0.0);
  EXPECT_EQ(w.active_region(5.0), first);  // same 10 ms period
  EXPECT_NE(w.active_region(10.0), first);
  EXPECT_EQ(w.active_region(10.0 * static_cast<double>(occ)), first);
}

TEST(HotspotWorkloadTest, FullLocalityTargetsActiveRegion) {
  workload::HotspotOptions o = small_options();
  o.locality = 1.0;
  const workload::HotspotWorkload w(o, quadrant_switches());
  Rng rng(41);
  for (const double t : {0.0, 15.0, 25.0, 35.0}) {
    const std::size_t active = w.active_region(t);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(w.key_region(w.sample_key(t, rng)), active);
    }
  }
}

TEST(HotspotWorkloadTest, FullIngressLocalityStaysInRegion) {
  workload::HotspotOptions o = small_options();
  o.ingress_locality = 1.0;
  const workload::HotspotWorkload w(o, quadrant_switches());
  Rng rng(42);
  for (std::size_t k = 0; k < 50; ++k) {
    const std::size_t sw = w.sample_ingress(k, rng);
    // One switch per region at the region's center: the ingress region
    // equals the key's region.
    EXPECT_EQ(w.region_of(quadrant_switches()[sw]), w.key_region(k));
  }
}

TEST(HotspotWorkloadTest, TraceIsDeterministicAndWellFormed) {
  const workload::HotspotWorkload w(small_options(), quadrant_switches());
  Rng rng_a(43);
  Rng rng_b(43);
  const auto ta = w.retrieval_trace(300, rng_a);
  const auto tb = w.retrieval_trace(300, rng_b);
  ASSERT_EQ(ta.size(), 300u);
  double prev = 0.0;
  std::set<std::string> universe(w.ids().begin(), w.ids().end());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].kind, workload::Op::Kind::kRetrieve);
    EXPECT_EQ(ta[i].data_id, tb[i].data_id);
    EXPECT_EQ(ta[i].access_switch, tb[i].access_switch);
    EXPECT_DOUBLE_EQ(ta[i].at_ms, tb[i].at_ms);
    EXPECT_GT(ta[i].at_ms, prev);
    prev = ta[i].at_ms;
    EXPECT_LT(ta[i].access_switch, 4u);
    EXPECT_TRUE(universe.count(ta[i].data_id));
  }
}

TEST(HotspotWorkloadTest, RegionDemandIsADistribution) {
  const workload::HotspotWorkload w(small_options(), quadrant_switches());
  const std::vector<double> demand = w.region_demand();
  ASSERT_EQ(demand.size(), w.region_count());
  double total = 0.0;
  for (double d : demand) {
    EXPECT_GE(d, 0.0);
    total += d;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HotspotWorkloadDeathTest, RejectsDegenerateOptions) {
  workload::HotspotOptions zero_universe = small_options();
  zero_universe.universe = 0;
  EXPECT_DEATH(workload::HotspotWorkload(zero_universe, quadrant_switches()),
               "invariant violated");
  workload::HotspotOptions bad_locality = small_options();
  bad_locality.locality = 1.5;
  EXPECT_DEATH(workload::HotspotWorkload(bad_locality, quadrant_switches()),
               "invariant violated");
  workload::HotspotOptions zero_period = small_options();
  zero_period.diurnal_period_ms = 0.0;
  EXPECT_DEATH(workload::HotspotWorkload(zero_period, quadrant_switches()),
               "invariant violated");
  EXPECT_DEATH(workload::HotspotWorkload(small_options(), {}),
               "invariant violated");
}

// ---------- delay model cache path ----------

TEST(DelayExperimentCacheTest, CachedRequestsChargeCacheService) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  HotKeyCache& cache = sys.network().enable_hot_key_cache();
  Rng rng(51);
  std::vector<RetrievalRequest> requests;
  for (int i = 0; i < 30; ++i) {
    const std::string id = "delay-" + std::to_string(i);
    ASSERT_TRUE(sys.place(id, "v" + std::to_string(i), rng.next_below(16))
                    .ok());
    const SwitchId ingress = rng.next_below(16);
    ASSERT_TRUE(sys.retrieve(id, ingress).ok());  // learn-mode warm
    requests.push_back({id, ingress, static_cast<double>(i) * 10.0});
  }
  cache.set_mode(HotKeyCache::Mode::kServe);

  DelayModelOptions opt;
  opt.cache_service_ms = 0.02;
  RetrievalDelayExperiment experiment(sys, opt);
  auto out = experiment.run(requests);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().not_found, 0u);
  // Every request was warmed at its own ingress: all served from the
  // cache, each costing exactly the cache service time (requests are
  // 10 ms apart, so nothing queues).
  EXPECT_EQ(out.value().cache_hits, requests.size());
  EXPECT_NEAR(out.value().delay.p50, 0.02, 1e-9);
  EXPECT_NEAR(out.value().delay.max, 0.02, 1e-9);

  // Same requests with the cache disabled: all routed, none cached.
  cache.set_enabled(false);
  auto uncached = experiment.run(requests);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(uncached.value().cache_hits, 0u);
  EXPECT_GT(uncached.value().delay.p50, 0.02);
}

}  // namespace
}  // namespace gred::core
