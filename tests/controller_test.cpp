// Controller: full control-plane pipeline, installed state invariants,
// range extension, and network dynamics (join/leave with migration).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hpp"
#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::core {
namespace {

using sden::SdenNetwork;
using topology::ServerId;
using topology::SwitchId;

SdenNetwork make_net(graph::Graph g, std::size_t per_switch,
                     std::size_t capacity = 0) {
  return SdenNetwork(
      topology::uniform_edge_network(std::move(g), per_switch, capacity));
}

TEST(ControllerTest, RequiresServers) {
  SdenNetwork net{topology::EdgeNetwork(topology::ring(4))};
  Controller ctrl;
  EXPECT_FALSE(ctrl.initialize(net).ok());
  EXPECT_FALSE(ctrl.initialized());
}

TEST(ControllerTest, InitializeInstallsEverything) {
  SdenNetwork net = make_net(topology::testbed6(), 2);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  EXPECT_TRUE(ctrl.initialized());

  for (SwitchId sw = 0; sw < 6; ++sw) {
    const sden::Switch& s = net.switch_at(sw);
    EXPECT_TRUE(s.dt_participant());
    EXPECT_EQ(s.local_servers().size(), 2u);
    EXPECT_FALSE(s.table().neighbors().empty());
  }
}

TEST(ControllerTest, TransitSwitchesStayNonParticipant) {
  // Middle switch of a line has no servers.
  topology::EdgeNetwork desc{topology::line(3)};
  (void)desc.attach_server(0);
  (void)desc.attach_server(2);
  SdenNetwork net{std::move(desc)};
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  EXPECT_TRUE(net.switch_at(0).dt_participant());
  EXPECT_FALSE(net.switch_at(1).dt_participant());
  EXPECT_TRUE(net.switch_at(2).dt_participant());
  // ...but it relays the 0<->2 virtual link.
  EXPECT_FALSE(net.switch_at(1).table().relays().empty());
}

TEST(ControllerTest, HomeSwitchMatchesNearestPosition) {
  SdenNetwork net = make_net(topology::grid(4, 4), 3);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  Rng rng(61);
  for (int t = 0; t < 100; ++t) {
    const geometry::Point2D p{rng.next_double(), rng.next_double()};
    const SwitchId home = ctrl.home_switch(p);
    // No other participant may be strictly closer.
    for (SwitchId sw : ctrl.space().participants()) {
      EXPECT_FALSE(geometry::closer_to(p, net.switch_at(sw).position(),
                                       net.switch_at(home).position()) &&
                   sw != home);
    }
  }
}

TEST(ControllerTest, ExpectedPlacementConsistentWithRouting) {
  SdenNetwork net = make_net(topology::grid(3, 3), 4);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  for (int i = 0; i < 60; ++i) {
    const std::string id = "item-" + std::to_string(i);
    const auto expected = ctrl.expected_placement(net, crypto::DataKey(id));
    ASSERT_TRUE(expected.ok());
    auto placed = proto.place(id, "v", i % 9);
    ASSERT_TRUE(placed.ok()) << placed.error().to_string();
    ASSERT_EQ(placed.value().route.delivered_to.size(), 1u);
    EXPECT_EQ(placed.value().route.delivered_to[0],
              expected.value().server);
    EXPECT_EQ(placed.value().destination, expected.value().sw);
  }
}

// ---------- range extension ----------

TEST(RangeExtensionTest, DelegatesToNeighborWithMostCapacity) {
  // Switch 0's server is tiny; neighbors have room.
  topology::EdgeNetwork desc{topology::ring(4)};
  (void)desc.attach_server(0, 2);    // server 0: capacity 2
  (void)desc.attach_server(1, 100);  // server 1: big
  (void)desc.attach_server(2, 50);
  (void)desc.attach_server(3, 10);   // server 3: neighbor of 0, small
  SdenNetwork net{std::move(desc)};
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());

  ASSERT_TRUE(ctrl.extend_range(net, 0).ok());
  const auto rewrite = net.switch_at(0).table().match_rewrite(0);
  ASSERT_TRUE(rewrite.has_value());
  // Neighbors of switch 0 on the ring: 1 and 3; server 1 has the most
  // remaining capacity.
  EXPECT_EQ(rewrite->replacement, 1u);
  EXPECT_EQ(rewrite->via_switch, 1u);
}

TEST(RangeExtensionTest, InvalidServerRejected) {
  SdenNetwork net = make_net(topology::ring(3), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  EXPECT_FALSE(ctrl.extend_range(net, 999).ok());
  EXPECT_FALSE(ctrl.retract_range(net, 999).ok());
}

TEST(RangeExtensionTest, RetractWithoutExtensionFails) {
  SdenNetwork net = make_net(topology::ring(3), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  const Status s = ctrl.retract_range(net, 0);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kNotFound);
}

TEST(RangeExtensionTest, EndToEndExtendPlaceRetrieveRetract) {
  SdenNetwork net = make_net(topology::ring(4), 1, /*capacity=*/1000);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);

  // Find data ids owned by server 0 (switch 0's only server).
  std::vector<std::string> owned;
  for (int i = 0; owned.size() < 5 && i < 3000; ++i) {
    const std::string id = "ext-" + std::to_string(i);
    const auto p = ctrl.expected_placement(net, crypto::DataKey(id));
    ASSERT_TRUE(p.ok());
    if (p.value().server == 0) owned.push_back(id);
  }
  ASSERT_EQ(owned.size(), 5u);

  ASSERT_TRUE(ctrl.extend_range(net, 0).ok());
  const ServerId delegate =
      net.switch_at(0).table().match_rewrite(0)->replacement;

  for (const std::string& id : owned) {
    auto r = proto.place(id, "payload:" + id, 2);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().route.delivered_to[0], delegate);
  }
  EXPECT_EQ(net.server(0).item_count(), 0u);
  EXPECT_EQ(net.server(delegate).item_count(), 5u);

  // Retrieval finds the data on the delegate.
  for (const std::string& id : owned) {
    auto r = proto.retrieve(id, 1);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
    EXPECT_EQ(r.value().route.responder, delegate);
    EXPECT_EQ(r.value().route.payload, "payload:" + id);
  }

  // Retract: items migrate home, rewrite removed, retrieval still works.
  ASSERT_TRUE(ctrl.retract_range(net, 0).ok());
  EXPECT_FALSE(net.switch_at(0).table().match_rewrite(0).has_value());
  EXPECT_EQ(net.server(0).item_count(), 5u);
  EXPECT_EQ(net.server(delegate).item_count(), 0u);
  for (const std::string& id : owned) {
    auto r = proto.retrieve(id, 3);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
    EXPECT_EQ(r.value().route.responder, 0u);
  }
}

// ---------- dynamics ----------

TEST(DynamicsTest, AddSwitchJoinsAndMigrates) {
  SdenNetwork net = make_net(topology::ring(5), 2);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);

  // Preload data.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(proto.place("dyn-" + std::to_string(i), "v", i % 5).ok());
  }
  const auto loads_before = net.server_loads();
  std::size_t total_before = 0;
  for (std::size_t l : loads_before) total_before += l;
  EXPECT_EQ(total_before, 200u);

  auto added = ctrl.add_switch(net, {0, 2}, 2);
  ASSERT_TRUE(added.ok()) << added.error().to_string();
  const SwitchId sw = added.value();
  EXPECT_EQ(net.switch_count(), 6u);
  EXPECT_TRUE(net.switch_at(sw).dt_participant());

  // No data lost; the new switch's servers took over some items.
  const auto loads_after = net.server_loads();
  std::size_t total_after = 0;
  for (std::size_t l : loads_after) total_after += l;
  EXPECT_EQ(total_after, 200u);
  std::size_t new_items = 0;
  for (ServerId s : net.description().servers_at(sw)) {
    new_items += net.server(s).item_count();
  }
  EXPECT_GT(new_items, 0u);
  EXPECT_EQ(ctrl.last_migration_count(), new_items);

  // Every item is still retrievable through the data plane.
  for (int i = 0; i < 200; ++i) {
    auto r = proto.retrieve("dyn-" + std::to_string(i), i % 6);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found) << i;
  }
}

TEST(DynamicsTest, AddSwitchValidation) {
  SdenNetwork net = make_net(topology::ring(3), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  EXPECT_FALSE(ctrl.add_switch(net, {}, 1).ok());         // no links
  EXPECT_FALSE(ctrl.add_switch(net, {42}, 1).ok());       // bad link
  Controller uninit;
  EXPECT_FALSE(uninit.add_switch(net, {0}, 1).ok());
}

TEST(DynamicsTest, RemoveSwitchRehomesData) {
  SdenNetwork net = make_net(topology::complete(5), 2);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(proto.place("rm-" + std::to_string(i), "v", i % 5).ok());
  }

  ASSERT_TRUE(ctrl.remove_switch(net, 2).ok());
  EXPECT_FALSE(net.switch_at(2).dt_participant());
  EXPECT_EQ(ctrl.space().participants().size(), 4u);

  // All 150 items survive on the remaining servers and are reachable.
  std::size_t total = 0;
  for (std::size_t l : net.server_loads()) total += l;
  EXPECT_EQ(total, 150u);
  for (ServerId s : {4u, 5u}) {  // switch 2's servers (ids 4, 5)
    EXPECT_EQ(net.server(s).item_count(), 0u);
  }
  for (int i = 0; i < 150; ++i) {
    auto r = proto.retrieve("rm-" + std::to_string(i), (i % 4 == 2) ? 3 : i % 4);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found) << i;
  }
}

TEST(DynamicsTest, RemoveCutVertexRejected) {
  // Line 0-1-2: removing the middle disconnects the ends.
  SdenNetwork net = make_net(topology::line(3), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  const Status s = ctrl.remove_switch(net, 1);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kFailedPrecondition);
  // Network unchanged.
  EXPECT_TRUE(net.description().switches().has_edge(0, 1));
}

TEST(DynamicsTest, RemoveLastParticipantRejected) {
  SdenNetwork net = make_net(graph::Graph(1), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  EXPECT_FALSE(ctrl.remove_switch(net, 0).ok());
}

TEST(LinkDynamicsTest, RemoveLinkReroutesVirtualLinks) {
  // Ring of 8: virtual links exist; kill a physical link carrying one
  // and verify every item stays reachable over the rerouted paths.
  SdenNetwork net = make_net(topology::ring(8), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(proto.place("lnk-" + std::to_string(i), "v", i % 8).ok());
  }
  const auto loads_before = net.server_loads();

  ASSERT_TRUE(ctrl.remove_link(net, 0, 1).ok());
  EXPECT_FALSE(net.description().switches().has_edge(0, 1));
  // Placement function unchanged -> no data moved.
  EXPECT_EQ(net.server_loads(), loads_before);
  for (int i = 0; i < 100; ++i) {
    auto r = proto.retrieve("lnk-" + std::to_string(i), (i * 3) % 8);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r.value().route.found) << i;
  }
}

TEST(LinkDynamicsTest, RemoveBridgeLinkRejected) {
  SdenNetwork net = make_net(topology::line(4), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  const Status s = ctrl.remove_link(net, 1, 2);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(net.description().switches().has_edge(1, 2));
}

TEST(LinkDynamicsTest, RemoveMissingLinkNotFound) {
  SdenNetwork net = make_net(topology::ring(5), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  EXPECT_EQ(ctrl.remove_link(net, 0, 2).error().code, ErrorCode::kNotFound);
}

TEST(LinkDynamicsTest, AddLinkShortensRoutes) {
  // Long ring: adding a chord across it must not break anything and
  // should reduce the mean placement hops.
  SdenNetwork net = make_net(topology::ring(12), 1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);

  auto mean_hops = [&]() {
    Rng rng(9);
    double total = 0;
    for (int i = 0; i < 100; ++i) {
      auto r = proto.place("al-" + std::to_string(i), "v",
                           rng.next_below(12));
      EXPECT_TRUE(r.ok());
      total += static_cast<double>(r.value().selected_hops);
    }
    return total / 100.0;
  };
  const double before = mean_hops();
  ASSERT_TRUE(ctrl.add_link(net, 0, 6).ok());
  ASSERT_TRUE(ctrl.add_link(net, 3, 9).ok());
  const double after = mean_hops();
  EXPECT_LE(after, before);
  EXPECT_FALSE(ctrl.add_link(net, 0, 6).ok());  // duplicate rejected
}

TEST(DynamicsTest, JoinThenLeaveRoundTrip) {
  SdenNetwork net = make_net(topology::complete(4), 2);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(proto.place("rt-" + std::to_string(i), "v", i % 4).ok());
  }
  auto sw = ctrl.add_switch(net, {0, 1, 2, 3}, 2);
  ASSERT_TRUE(sw.ok());
  ASSERT_TRUE(ctrl.remove_switch(net, sw.value()).ok());
  std::size_t total = 0;
  for (std::size_t l : net.server_loads()) total += l;
  EXPECT_EQ(total, 100u);
  for (int i = 0; i < 100; ++i) {
    auto r = proto.retrieve("rt-" + std::to_string(i), i % 4);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
  }
}

}  // namespace
}  // namespace gred::core
