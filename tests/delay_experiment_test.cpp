// RetrievalDelayExperiment and the latency-aware routing metrics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/delay_experiment.hpp"
#include "core/system.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::core {
namespace {

GredSystem testbed_system() {
  auto sys = GredSystem::create(
      topology::uniform_edge_network(topology::testbed6(), 2), {});
  EXPECT_TRUE(sys.ok());
  return std::move(sys).value();
}

std::vector<std::string> preload(GredSystem& sys, std::size_t count) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string id = "delay-" + std::to_string(i);
    EXPECT_TRUE(sys.place(id, "v", i % 6).ok());
    ids.push_back(id);
  }
  return ids;
}

TEST(DelayExperimentTest, EmptyIdsRejected) {
  GredSystem sys = testbed_system();
  RetrievalDelayExperiment exp(sys, {});
  Rng rng(1);
  EXPECT_FALSE(exp.run_uniform({}, 10, 1.0, rng).ok());
}

TEST(DelayExperimentTest, AllRequestsComplete) {
  GredSystem sys = testbed_system();
  const auto ids = preload(sys, 50);
  RetrievalDelayExperiment exp(sys, {});
  Rng rng(2);
  auto r = exp.run_uniform(ids, 200, 0.1, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().requests, 200u);
  EXPECT_EQ(r.value().not_found, 0u);
  EXPECT_EQ(r.value().delay.count, 200u);
  EXPECT_GT(r.value().delay.mean, 0.0);
  EXPECT_GT(r.value().makespan_ms, 0.0);
}

TEST(DelayExperimentTest, MissingDataCountedNotFound) {
  GredSystem sys = testbed_system();
  RetrievalDelayExperiment exp(sys, {});
  std::vector<RetrievalRequest> requests;
  requests.push_back({"ghost-item", 0, 0.0});
  auto r = exp.run(requests);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().not_found, 1u);
  EXPECT_EQ(r.value().delay.count, 0u);
}

TEST(DelayExperimentTest, DelayAtLeastServiceTime) {
  GredSystem sys = testbed_system();
  const auto ids = preload(sys, 10);
  DelayModelOptions model;
  model.service_time_ms = 1.0;
  model.link_latency_ms = 0.1;
  RetrievalDelayExperiment exp(sys, model);
  Rng rng(3);
  auto r = exp.run_uniform(ids, 50, 10.0, rng);  // no queueing (sparse)
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().delay.min, 1.0);
}

TEST(DelayExperimentTest, QueueingRaisesDelayUnderBursts) {
  GredSystem sys = testbed_system();
  const auto ids = preload(sys, 10);
  RetrievalDelayExperiment exp(sys, {});
  Rng r1(4), r2(4);
  auto sparse = exp.run_uniform(ids, 300, /*spacing=*/5.0, r1);
  auto dense = exp.run_uniform(ids, 300, /*spacing=*/0.001, r2);
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE(dense.ok());
  EXPECT_GT(dense.value().delay.mean, sparse.value().delay.mean);
}

TEST(DelayExperimentTest, FasterLinksLowerDelay) {
  GredSystem sys = testbed_system();
  const auto ids = preload(sys, 10);
  DelayModelOptions slow;
  slow.link_latency_ms = 1.0;
  DelayModelOptions fast;
  fast.link_latency_ms = 0.01;
  Rng r1(5), r2(5);
  auto s = RetrievalDelayExperiment(sys, slow).run_uniform(ids, 100, 5.0, r1);
  auto f = RetrievalDelayExperiment(sys, fast).run_uniform(ids, 100, 5.0, r2);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(f.ok());
  EXPECT_GT(s.value().delay.mean, f.value().delay.mean);
}

// ---------- latency-aware metrics ----------

topology::EdgeNetwork latency_waxman(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  topology::WaxmanOptions wopt;
  wopt.node_count = n;
  wopt.min_degree = 3;
  wopt.latency_weights = true;
  auto topo = topology::generate_waxman(wopt, rng);
  EXPECT_TRUE(topo.ok());
  return topology::uniform_edge_network(std::move(topo).value().graph, 4);
}

TEST(LatencyMetricsTest, UnitWeightsGiveEqualViews) {
  GredSystem sys = testbed_system();
  auto r = sys.place("metric-check", "v", 3);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().selected_cost,
                   static_cast<double>(r.value().selected_hops));
  EXPECT_DOUBLE_EQ(r.value().shortest_cost,
                   static_cast<double>(r.value().shortest_hops));
  EXPECT_NEAR(r.value().latency_stretch, r.value().stretch, 1e-12);
}

TEST(LatencyMetricsTest, WeightedNetworkCostsSane) {
  auto built = GredSystem::create(latency_waxman(40, 21), {});
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    auto r = sys.place("w-" + std::to_string(i), "", rng.next_below(40));
    ASSERT_TRUE(r.ok());
    // Selected cost can never beat the weighted shortest path.
    EXPECT_GE(r.value().selected_cost, r.value().shortest_cost - 1e-9);
    EXPECT_GE(r.value().latency_stretch, 1.0 - 1e-9);
  }
}

TEST(LatencyMetricsTest, WeightedEmbeddingOptionWorksEndToEnd) {
  VirtualSpaceOptions opt;
  opt.weighted_embedding = true;
  auto built = GredSystem::create(latency_waxman(40, 23), opt);
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();
  Rng rng(24);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "we-" + std::to_string(i);
    ASSERT_TRUE(sys.place(id, "v", rng.next_below(40)).ok());
    auto r = sys.retrieve(id, rng.next_below(40));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
  }
}

TEST(LatencyMetricsTest, ApspLatencyMatchesApspOnUnitWeights) {
  GredSystem sys = testbed_system();
  const auto& hops = sys.controller().apsp();
  const auto& lat = sys.controller().apsp_latency();
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(hops.dist(i, j), lat.dist(i, j));
    }
  }
}

}  // namespace
}  // namespace gred::core
