// Incremental-vs-full churn differential soak (GRED_INCREMENTAL). Two
// identical systems absorb the same seeded stream of dynamics events —
// switch join/leave, link add/remove, range extend/retract — one on
// the incremental control plane (delta-APSP, localized DT repair,
// flow-table and route-plan patching), one on the full
// recompute-and-reinstall path. After EVERY event the incremental
// system must be bit-identical to ground truth three ways:
//
//   1. its delta-maintained APSP tables equal a fresh BFS/Dijkstra run,
//   2. its repaired DT adjacency equals a fresh Bowyer-Watson build,
//   3. its installed flow tables equal the full-rebuild twin's, and
//      packets route bit-identically through the full twin's live
//      plan, the incremental twin's PATCHED plan, and a 4-shard
//      ShardedDataPlane kept current via patch_plans().
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/controller.hpp"
#include "crypto/data_key.hpp"
#include "geometry/delaunay.hpp"
#include "graph/shortest_path.hpp"
#include "sden/network.hpp"
#include "shard/sharded_data_plane.hpp"
#include "topology/waxman.hpp"

namespace gred {
namespace {

using topology::ServerId;
using topology::SwitchId;

topology::EdgeNetwork make_net(std::size_t switches, std::uint64_t seed) {
  Rng rng(seed);
  topology::WaxmanOptions opt;
  opt.node_count = switches;
  opt.min_degree = 3;
  auto topo = topology::generate_waxman(opt, rng);
  EXPECT_TRUE(topo.ok());
  topology::EdgeNetwork net(std::move(topo).value().graph);
  for (std::size_t s = 0; s < switches; ++s) {
    const std::size_t count = 1 + rng.next_below(3);
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_TRUE(net.attach_server(s, /*capacity=*/0).ok());
    }
  }
  return net;
}

sden::Packet make_packet(const std::string& id, sden::PacketType type,
                         const std::string& payload = "") {
  sden::Packet p;
  p.type = type;
  p.data_id = id;
  p.payload = payload;
  const crypto::DataKey key(id);
  p.target = {key.position().x, key.position().y};
  p.set_key(key);
  return p;
}

void expect_identical(const sden::RouteResult& a, const sden::RouteResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status.ok(), b.status.ok()) << what;
  if (!a.status.ok() && !b.status.ok()) {
    EXPECT_EQ(a.status.error().code, b.status.error().code) << what;
    EXPECT_EQ(a.status.error().message, b.status.error().message) << what;
  }
  EXPECT_EQ(a.switch_path, b.switch_path) << what;
  EXPECT_EQ(a.delivered_to, b.delivered_to) << what;
  EXPECT_EQ(a.responder, b.responder) << what;
  EXPECT_EQ(a.payload, b.payload) << what;
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_DOUBLE_EQ(a.path_cost, b.path_cost) << what;
}

/// Field-wise flow-table equality of every switch of the two networks
/// (the entry structs carry no operator==). Entry ORDER matters: the
/// live pipeline's match semantics are first-wins over the vectors.
void expect_tables_equal(sden::SdenNetwork& a, sden::SdenNetwork& b,
                         int step) {
  ASSERT_EQ(a.switch_count(), b.switch_count()) << step;
  for (SwitchId s = 0; s < a.switch_count(); ++s) {
    const sden::Switch& sa = a.const_switch_at(s);
    const sden::Switch& sb = b.const_switch_at(s);
    EXPECT_EQ(sa.position().x, sb.position().x) << step << " sw " << s;
    EXPECT_EQ(sa.position().y, sb.position().y) << step << " sw " << s;
    const sden::FlowTable& ta = sa.table();
    const sden::FlowTable& tb = sb.table();
    ASSERT_EQ(ta.neighbors().size(), tb.neighbors().size())
        << step << " sw " << s;
    for (std::size_t i = 0; i < ta.neighbors().size(); ++i) {
      const sden::NeighborEntry& na = ta.neighbors()[i];
      const sden::NeighborEntry& nb = tb.neighbors()[i];
      EXPECT_EQ(na.neighbor, nb.neighbor) << step << " sw " << s;
      EXPECT_EQ(na.position.x, nb.position.x) << step << " sw " << s;
      EXPECT_EQ(na.position.y, nb.position.y) << step << " sw " << s;
      EXPECT_EQ(na.physical, nb.physical) << step << " sw " << s;
      EXPECT_EQ(na.first_hop, nb.first_hop) << step << " sw " << s;
    }
    ASSERT_EQ(ta.relays().size(), tb.relays().size()) << step << " sw " << s;
    for (std::size_t i = 0; i < ta.relays().size(); ++i) {
      const sden::RelayEntry& ra = ta.relays()[i];
      const sden::RelayEntry& rb = tb.relays()[i];
      EXPECT_EQ(ra.sour, rb.sour) << step << " sw " << s;
      EXPECT_EQ(ra.pred, rb.pred) << step << " sw " << s;
      EXPECT_EQ(ra.succ, rb.succ) << step << " sw " << s;
      EXPECT_EQ(ra.dest, rb.dest) << step << " sw " << s;
    }
    ASSERT_EQ(ta.rewrites().size(), tb.rewrites().size())
        << step << " sw " << s;
    for (std::size_t i = 0; i < ta.rewrites().size(); ++i) {
      const sden::RewriteEntry& ra = ta.rewrites()[i];
      const sden::RewriteEntry& rb = tb.rewrites()[i];
      EXPECT_EQ(ra.original, rb.original) << step << " sw " << s;
      EXPECT_EQ(ra.replacement, rb.replacement) << step << " sw " << s;
      EXPECT_EQ(ra.via_switch, rb.via_switch) << step << " sw " << s;
    }
  }
}

TEST(IncrementalChurn, SeededSoakMatchesFullRebuildBitExact) {
  const std::size_t n = 40;
  topology::EdgeNetwork desc = make_net(n, 0x1CEB00DAu);
  sden::SdenNetwork net_inc(desc);
  sden::SdenNetwork net_full(std::move(desc));

  core::Controller ctrl_inc;
  ctrl_inc.set_incremental(true);
  core::Controller ctrl_full;
  ctrl_full.set_incremental(false);
  ASSERT_TRUE(ctrl_inc.initialize(net_inc).ok());
  ASSERT_TRUE(ctrl_full.initialize(net_full).ok());

  // 4-shard sharded runtime over the INCREMENTAL network, kept current
  // with patch_plans after every incremental event (fixed shard count
  // so the TSan tree exercises the cross-shard rings deterministically).
  shard::ShardedDataPlane sdp(net_inc, 4);

  // Seed identical storage through both fast paths.
  Rng seed_rng(0xF00Du);
  std::vector<std::string> live;
  sden::RouteResult scratch;
  for (int i = 0; i < 60; ++i) {
    const std::string id = "inc-" + std::to_string(i);
    const SwitchId ingress = seed_rng.next_below(n);
    for (sden::SdenNetwork* net : {&net_inc, &net_full}) {
      sden::Packet p =
          make_packet(id, sden::PacketType::kPlacement, "v-" + id);
      net->route(p, ingress, scratch);
      ASSERT_TRUE(scratch.status.ok()) << id;
    }
    live.push_back(id);
  }
  sdp.recompile();  // placements invalidated the compiled plans

  Rng rng(0xD15EA5Eu);
  auto random_participant = [&]() -> SwitchId {
    const auto& parts = ctrl_inc.space().participants();
    return parts[rng.next_below(parts.size())];
  };

  // After every event, the three-way ground-truth check.
  std::vector<sden::Packet> pkts;
  std::vector<SwitchId> ingresses;
  std::vector<sden::RouteResult> shard_results;
  auto verify = [&](int step) {
    // 1. Delta-maintained APSP tables == fresh BFS/Dijkstra, bit-equal.
    const graph::Graph& g = net_inc.description().switches();
    EXPECT_TRUE(ctrl_inc.apsp().dist ==
                graph::all_pairs_shortest_paths(g, /*weighted=*/false).dist)
        << "step " << step << ": unweighted APSP diverged";
    EXPECT_TRUE(ctrl_inc.apsp_latency().dist ==
                graph::all_pairs_shortest_paths(g, /*weighted=*/true).dist)
        << "step " << step << ": weighted APSP diverged";

    // 2. Repaired DT adjacency == fresh Bowyer-Watson over the same
    // positions (the DT of points in general position is unique).
    auto fresh =
        geometry::DelaunayTriangulation::build(ctrl_inc.space().positions());
    ASSERT_TRUE(fresh.ok()) << "step " << step;
    const geometry::DelaunayTriangulation& repaired =
        ctrl_inc.dt().triangulation();
    ASSERT_EQ(repaired.size(), fresh.value().size()) << "step " << step;
    for (std::size_t i = 0; i < repaired.size(); ++i) {
      EXPECT_EQ(repaired.neighbors(i), fresh.value().neighbors(i))
          << "step " << step << ": DT adjacency of site " << i;
    }

    // 3. Installed state and routing equal the full-rebuild twin.
    ASSERT_EQ(ctrl_inc.space().participants(),
              ctrl_full.space().participants())
        << "step " << step;
    expect_tables_equal(net_inc, net_full, step);

    pkts.clear();
    ingresses.clear();
    for (const std::string& id : live) {
      pkts.push_back(make_packet(id, sden::PacketType::kRetrieval));
      ingresses.push_back(rng.next_below(net_inc.switch_count()));
    }
    shard_results.resize(pkts.size());
    sdp.replay(pkts.data(), ingresses.data(), pkts.size(),
               shard_results.data());
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      sden::Packet via_full = pkts[i];
      sden::RouteResult full_res;
      net_full.route(via_full, ingresses[i], full_res);
      sden::Packet via_inc = pkts[i];
      sden::RouteResult inc_res;
      net_inc.route(via_inc, ingresses[i], inc_res);
      const std::string what =
          "step " + std::to_string(step) + " pkt " + std::to_string(i);
      expect_identical(full_res, inc_res, what + " (patched plan)");
      expect_identical(full_res, shard_results[i], what + " (sharded)");
    }
  };

  verify(-1);
  ASSERT_FALSE(::testing::Test::HasFailure());

  constexpr int kEvents = 32;
  int incremental_events = 0;
  for (int step = 0; step < kEvents; ++step) {
    const std::uint64_t op = rng.next_below(6);
    bool ok_inc = false;
    bool ok_full = false;
    switch (op) {
      case 0: {  // switch join
        const SwitchId u = random_participant();
        const SwitchId v = random_participant();
        auto a = ctrl_inc.add_switch(net_inc, {u, v}, /*server_count=*/2);
        auto b = ctrl_full.add_switch(net_full, {u, v}, /*server_count=*/2);
        ok_inc = a.ok();
        ok_full = b.ok();
        if (a.ok() && b.ok()) EXPECT_EQ(a.value(), b.value()) << step;
        break;
      }
      case 1: {  // switch leave (keep enough participants alive)
        if (ctrl_inc.space().participants().size() > 8) {
          const SwitchId victim = random_participant();
          ok_inc = ctrl_inc.remove_switch(net_inc, victim).ok();
          ok_full = ctrl_full.remove_switch(net_full, victim).ok();
        } else {
          const SwitchId u = random_participant();
          const SwitchId v = random_participant();
          ok_inc = ctrl_inc.add_link(net_inc, u, v).ok();
          ok_full = ctrl_full.add_link(net_full, u, v).ok();
        }
        break;
      }
      case 2: {  // link add; may fail (exists / self-loop)
        const SwitchId u = random_participant();
        const SwitchId v = random_participant();
        ok_inc = ctrl_inc.add_link(net_inc, u, v).ok();
        ok_full = ctrl_full.add_link(net_full, u, v).ok();
        break;
      }
      case 3: {  // link remove; may fail (missing / would disconnect)
        const SwitchId u = random_participant();
        const SwitchId v = random_participant();
        ok_inc = ctrl_inc.remove_link(net_inc, u, v).ok();
        ok_full = ctrl_full.remove_link(net_full, u, v).ok();
        break;
      }
      case 4: {  // range extension; may fail (already active)
        const ServerId s = rng.next_below(net_inc.server_count());
        ok_inc = ctrl_inc.extend_range(net_inc, s).ok();
        ok_full = ctrl_full.extend_range(net_full, s).ok();
        break;
      }
      default: {  // retraction; may fail (none active)
        const ServerId s = rng.next_below(net_inc.server_count());
        ok_inc = ctrl_inc.retract_range(net_inc, s).ok();
        ok_full = ctrl_full.retract_range(net_full, s).ok();
        break;
      }
    }
    ASSERT_EQ(ok_inc, ok_full) << "step " << step << " op " << op
                               << ": twins diverged on op outcome";

    if (ok_inc) {
      if (ctrl_inc.last_event_incremental()) {
        ++incremental_events;
        const auto& affected = ctrl_inc.last_affected_switches();
        std::vector<std::uint32_t> touched(affected.begin(), affected.end());
        sdp.patch_plans(touched.data(), touched.size());
      } else {
        sdp.recompile();
      }
    }

    verify(step);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "identity broke at step " << step << " (op " << op << ")";
  }

  // The point of the soak is the incremental path; if nearly every
  // event fell back to the full rebuild the differential proved
  // nothing. (Fallbacks are legal — staleness, collisions — but must
  // stay the exception at this scale.)
  EXPECT_GE(incremental_events, kEvents / 3)
      << "incremental path engaged too rarely";
}

// The toggle itself: dynamics under GRED_INCREMENTAL default to the
// env flag, and set_incremental switches at runtime.
TEST(IncrementalChurn, ToggleReportsIncrementalEvents) {
  topology::EdgeNetwork desc = make_net(16, 0xBEEFu);
  sden::SdenNetwork net(std::move(desc));
  core::Controller ctrl;
  ctrl.set_incremental(false);
  ASSERT_TRUE(ctrl.initialize(net).ok());

  ASSERT_TRUE(ctrl.add_link(net, 0, 9, 1.0).ok() ||
              ctrl.add_link(net, 0, 10, 1.0).ok());
  EXPECT_FALSE(ctrl.last_event_incremental());
  EXPECT_TRUE(ctrl.last_affected_switches().empty());

  ctrl.set_incremental(true);
  SwitchId u = 0;
  SwitchId v = 0;
  for (SwitchId cand = 2; cand < net.switch_count(); ++cand) {
    if (net.description().switches().find_edge(1, cand) == nullptr) {
      u = 1;
      v = cand;
      break;
    }
  }
  ASSERT_NE(u, v);
  ASSERT_TRUE(ctrl.add_link(net, u, v, 1.0).ok());
  EXPECT_TRUE(ctrl.last_event_incremental());
  const auto& affected = ctrl.last_affected_switches();
  EXPECT_FALSE(affected.empty());
  EXPECT_TRUE(std::binary_search(affected.begin(), affected.end(), u));
  EXPECT_TRUE(std::binary_search(affected.begin(), affected.end(), v));
}

}  // namespace
}  // namespace gred
