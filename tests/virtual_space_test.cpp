// VirtualSpace (M-position + normalization + C-regulation) and the
// multi-hop DT construction.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "core/multihop_dt.hpp"
#include "core/virtual_space.hpp"
#include "geometry/voronoi.hpp"
#include "graph/shortest_path.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::core {
namespace {

using geometry::Point2D;
using topology::SwitchId;

std::vector<SwitchId> all_switches(const graph::Graph& g) {
  std::vector<SwitchId> out(g.node_count());
  for (SwitchId i = 0; i < g.node_count(); ++i) out[i] = i;
  return out;
}

// ---------- VirtualSpace ----------

TEST(VirtualSpaceTest, RejectsEmptyParticipants) {
  const graph::Graph g = topology::ring(4);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  EXPECT_FALSE(VirtualSpace::build({}, apsp, {}).ok());
}

TEST(VirtualSpaceTest, RejectsBadMargin) {
  const graph::Graph g = topology::ring(4);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  VirtualSpaceOptions opt;
  opt.margin = 0.7;
  EXPECT_FALSE(VirtualSpace::build(all_switches(g), apsp, opt).ok());
}

TEST(VirtualSpaceTest, RejectsDisconnectedParticipants) {
  graph::Graph g(4);
  (void)g.add_edge(0, 1);
  (void)g.add_edge(2, 3);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  EXPECT_FALSE(VirtualSpace::build(all_switches(g), apsp, {}).ok());
}

TEST(VirtualSpaceTest, TinySizes) {
  for (std::size_t n : {1u, 2u, 3u}) {
    const graph::Graph g =
        n == 1 ? graph::Graph(1) : (n == 2 ? topology::line(2)
                                           : topology::ring(3));
    const auto apsp = graph::all_pairs_shortest_paths(g);
    auto vs = VirtualSpace::build(all_switches(g), apsp, {});
    ASSERT_TRUE(vs.ok()) << "n=" << n;
    EXPECT_EQ(vs.value().positions().size(), n);
    std::set<std::pair<double, double>> distinct;
    for (const Point2D& p : vs.value().positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1.0);
      distinct.insert({p.x, p.y});
    }
    EXPECT_EQ(distinct.size(), n);
  }
}

TEST(VirtualSpaceTest, PositionsInUnitSquareAndDistinct) {
  Rng rng(12);
  topology::WaxmanOptions wopt;
  wopt.node_count = 50;
  auto topo = topology::generate_waxman(wopt, rng);
  ASSERT_TRUE(topo.ok());
  const auto apsp = graph::all_pairs_shortest_paths(topo.value().graph);
  auto vs = VirtualSpace::build(all_switches(topo.value().graph), apsp, {});
  ASSERT_TRUE(vs.ok());
  std::set<std::pair<double, double>> distinct;
  for (const Point2D& p : vs.value().positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
    distinct.insert({p.x, p.y});
  }
  EXPECT_EQ(distinct.size(), 50u);
}

TEST(VirtualSpaceTest, EmbeddingPreservesDistanceOrder) {
  // Greedy network embedding: virtual distance should correlate with
  // hop distance. Check rank agreement on a grid (clean geometry).
  const graph::Graph g = topology::grid(6, 6);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  VirtualSpaceOptions opt;
  opt.use_cvt = false;  // test the raw M-position output
  auto vs = VirtualSpace::build(all_switches(g), apsp, opt);
  ASSERT_TRUE(vs.ok());
  EXPECT_LT(vs.value().embedding_stress(), 0.25);

  const auto& pos = vs.value().mds_positions();
  // For node 0 (a corner), the farthest node in hops must be farther in
  // the virtual space than an adjacent node.
  const double d_adj = geometry::distance(pos[0], pos[1]);
  const double d_far = geometry::distance(pos[0], pos[35]);
  EXPECT_GT(d_far, 3.0 * d_adj);
}

TEST(VirtualSpaceTest, NoCvtSkipsRefinement) {
  const graph::Graph g = topology::grid(4, 4);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  VirtualSpaceOptions opt;
  opt.use_cvt = false;
  auto vs = VirtualSpace::build(all_switches(g), apsp, opt);
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs.value().positions(), vs.value().mds_positions());
  EXPECT_TRUE(vs.value().cvt_energy_history().empty());
}

TEST(VirtualSpaceTest, CvtImprovesCellBalance) {
  // After C-regulation the Voronoi cell areas must be more even than
  // before (the paper's whole point in Section IV-B).
  Rng rng(13);
  topology::WaxmanOptions wopt;
  wopt.node_count = 40;
  auto topo = topology::generate_waxman(wopt, rng);
  ASSERT_TRUE(topo.ok());
  const auto apsp = graph::all_pairs_shortest_paths(topo.value().graph);

  VirtualSpaceOptions opt;
  opt.cvt_iterations = 50;
  opt.cvt_samples = 2000;
  auto vs = VirtualSpace::build(all_switches(topo.value().graph), apsp, opt);
  ASSERT_TRUE(vs.ok());

  const geometry::Rect domain;
  auto cov_of = [&](const std::vector<Point2D>& sites) {
    const auto areas = geometry::voronoi_cell_areas(sites, domain);
    double mean = 0, var = 0;
    for (double a : areas) mean += a;
    mean /= static_cast<double>(areas.size());
    for (double a : areas) var += (a - mean) * (a - mean);
    return std::sqrt(var / static_cast<double>(areas.size())) / mean;
  };
  EXPECT_LT(cov_of(vs.value().positions()),
            cov_of(vs.value().mds_positions()));
}

TEST(VirtualSpaceTest, CvtEnergyRecorded) {
  const graph::Graph g = topology::grid(5, 5);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  VirtualSpaceOptions opt;
  opt.cvt_iterations = 15;
  auto vs = VirtualSpace::build(all_switches(g), apsp, opt);
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs.value().cvt_energy_history().size(), 15u);
}

TEST(VirtualSpaceTest, DeterministicForSameSeed) {
  const graph::Graph g = topology::grid(4, 5);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  VirtualSpaceOptions opt;
  opt.seed = 777;
  auto a = VirtualSpace::build(all_switches(g), apsp, opt);
  auto b = VirtualSpace::build(all_switches(g), apsp, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().positions(), b.value().positions());
}

TEST(VirtualSpaceTest, IndexAndNearest) {
  const graph::Graph g = topology::ring(5);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  auto vs = VirtualSpace::build({0, 2, 4}, apsp, {});
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs.value().index_of(2), 1u);
  EXPECT_EQ(vs.value().index_of(1), VirtualSpace::kNoIndex);
  // nearest_participant of a participant's own position is itself.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(vs.value().nearest_participant(vs.value().positions()[i]),
              vs.value().participants()[i]);
  }
}

TEST(VirtualSpaceTest, AddRemoveParticipant) {
  const graph::Graph g = topology::ring(5);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  auto built = VirtualSpace::build({0, 1, 2}, apsp, {});
  ASSERT_TRUE(built.ok());
  VirtualSpace vs = std::move(built).value();
  vs.add_participant(3, {0.9, 0.9});
  EXPECT_EQ(vs.index_of(3), 3u);
  EXPECT_EQ(vs.positions().size(), 4u);
  vs.remove_participant(1);
  EXPECT_EQ(vs.index_of(1), VirtualSpace::kNoIndex);
  EXPECT_EQ(vs.positions().size(), 3u);
  vs.remove_participant(99);  // no-op
  EXPECT_EQ(vs.positions().size(), 3u);
}

// ---------- MultiHopDT ----------

TEST(MultiHopDtTest, SizeMismatchRejected) {
  const graph::Graph g = topology::ring(4);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  EXPECT_FALSE(
      MultiHopDT::build({0, 1}, {{0.1, 0.1}}, g, apsp).ok());
}

TEST(MultiHopDtTest, RingWithCrossEmbedding) {
  // 6-ring: DT in the virtual space will connect some non-adjacent
  // switches; those edges must resolve to relay paths.
  const graph::Graph g = topology::ring(6);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  auto vs = VirtualSpace::build(all_switches(g), apsp, {});
  ASSERT_TRUE(vs.ok());
  auto dt = MultiHopDT::build(vs.value().participants(),
                              vs.value().positions(), g, apsp);
  ASSERT_TRUE(dt.ok()) << dt.error().to_string();

  bool found_vlink = false;
  for (SwitchId sw = 0; sw < 6; ++sw) {
    for (const DtNeighborInfo& info : dt.value().candidates_of(sw)) {
      if (info.physical) {
        EXPECT_EQ(info.first_hop, info.neighbor);
        EXPECT_EQ(info.path_length, 1u);
        EXPECT_TRUE(g.has_edge(sw, info.neighbor));
      } else {
        found_vlink = true;
        EXPECT_GT(info.path_length, 1u);
        EXPECT_TRUE(g.has_edge(sw, info.first_hop));
      }
    }
  }
  EXPECT_TRUE(found_vlink);
  EXPECT_GT(dt.value().mean_vlink_length(), 1.0);
}

TEST(MultiHopDtTest, RelayEntriesFormValidChains) {
  Rng rng(14);
  topology::WaxmanOptions wopt;
  wopt.node_count = 30;
  wopt.min_degree = 2;
  auto topo = topology::generate_waxman(wopt, rng);
  ASSERT_TRUE(topo.ok());
  const graph::Graph& g = topo.value().graph;
  const auto apsp = graph::all_pairs_shortest_paths(g);
  auto vs = VirtualSpace::build(all_switches(g), apsp, {});
  ASSERT_TRUE(vs.ok());
  auto dt = MultiHopDT::build(vs.value().participants(),
                              vs.value().positions(), g, apsp);
  ASSERT_TRUE(dt.ok());

  // Every relay entry must sit on a physical link chain: pred-holder
  // and holder-succ must be physical edges.
  for (const auto& [holder, relays] : dt.value().relay_entries()) {
    for (const sden::RelayEntry& r : relays) {
      EXPECT_TRUE(g.has_edge(holder, r.pred))
          << holder << " pred " << r.pred;
      EXPECT_TRUE(g.has_edge(holder, r.succ))
          << holder << " succ " << r.succ;
      EXPECT_NE(r.dest, holder);
      EXPECT_NE(r.sour, holder);
    }
  }
}

TEST(MultiHopDtTest, CandidatesCoverAllDtNeighbors) {
  const graph::Graph g = topology::grid(4, 4);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  auto vs = VirtualSpace::build(all_switches(g), apsp, {});
  ASSERT_TRUE(vs.ok());
  auto built = MultiHopDT::build(vs.value().participants(),
                                 vs.value().positions(), g, apsp);
  ASSERT_TRUE(built.ok());
  const MultiHopDT& dt = built.value();

  const auto& tri = dt.triangulation();
  for (std::size_t i = 0; i < 16; ++i) {
    std::set<SwitchId> candidates;
    for (const DtNeighborInfo& info : dt.candidates_of(i)) {
      candidates.insert(info.neighbor);
    }
    for (std::size_t j : tri.neighbors(i)) {
      EXPECT_TRUE(candidates.count(dt.participants()[j]))
          << "switch " << i << " missing DT neighbor " << j;
    }
  }
}

TEST(MultiHopDtTest, NonParticipantCanBeRelay) {
  // Line 0-1-2 where switch 1 has no servers: participants {0, 2} are
  // DT neighbors whose virtual link relays through 1.
  const graph::Graph g = topology::line(3);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  auto vs = VirtualSpace::build({0, 2}, apsp, {});
  ASSERT_TRUE(vs.ok());
  auto dt = MultiHopDT::build({0, 2}, vs.value().positions(), g, apsp);
  ASSERT_TRUE(dt.ok());
  ASSERT_EQ(dt.value().candidates_of(0).size(), 1u);
  EXPECT_FALSE(dt.value().candidates_of(0)[0].physical);
  EXPECT_EQ(dt.value().candidates_of(0)[0].first_hop, 1u);
  ASSERT_TRUE(dt.value().relay_entries().count(1));
  EXPECT_EQ(dt.value().relay_entries().at(1).size(), 2u);  // both directions
}

}  // namespace
}  // namespace gred::core
