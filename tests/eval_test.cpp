// The evaluation harness library: scenario factory and measurement
// procedures, including the headline cross-protocol relationships the
// benches rely on.
#include <gtest/gtest.h>

#include "eval/experiments.hpp"
#include "eval/scenario.hpp"

namespace gred::eval {
namespace {

ScenarioOptions small_scenario() {
  ScenarioOptions opt;
  opt.switches = 30;
  opt.servers_per_switch = 5;
  opt.topology_seed = 99;
  opt.cvt_iterations = 30;
  return opt;
}

TEST(ScenarioTest, BuildsAllThreeProtocols) {
  const ScenarioOptions opt = small_scenario();
  auto net = build_network(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net.value().switch_count(), 30u);
  EXPECT_EQ(net.value().server_count(), 150u);

  auto gred = build_gred(net.value(), opt);
  auto nocvt = build_gred_nocvt(net.value(), opt);
  auto ring = build_chord(net.value());
  ASSERT_TRUE(gred.ok());
  ASSERT_TRUE(nocvt.ok());
  ASSERT_TRUE(ring.ok());
  EXPECT_TRUE(gred.value().controller().options().use_cvt);
  EXPECT_FALSE(nocvt.value().controller().options().use_cvt);
  EXPECT_EQ(ring.value().ring_size(), 150u);
}

TEST(ScenarioTest, DeterministicForSameSeed) {
  const ScenarioOptions opt = small_scenario();
  auto a = build_network(opt);
  auto b = build_network(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().switches().edges(), b.value().switches().edges());
}

TEST(ScenarioTest, LatencyWeightsProduceNonUnitWeights) {
  ScenarioOptions opt = small_scenario();
  opt.latency_weights = true;
  auto net = build_network(opt);
  ASSERT_TRUE(net.ok());
  bool non_unit = false;
  for (const auto& [u, v] : net.value().switches().edges()) {
    const double w = net.value().switches().edge_weight(u, v).value();
    if (w != 1.0) non_unit = true;
    EXPECT_GT(w, 0.0);
  }
  EXPECT_TRUE(non_unit);
}

TEST(ExperimentsTest, WorkloadIdsDeterministicAndDistinct) {
  const auto a = workload_ids(100, 7);
  const auto b = workload_ids(100, 7);
  EXPECT_EQ(a, b);
  std::set<std::string> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), 100u);
  EXPECT_NE(workload_ids(1, 7)[0], workload_ids(1, 8)[0]);
}

TEST(ExperimentsTest, StretchMeasurementsSane) {
  const ScenarioOptions opt = small_scenario();
  auto net = build_network(opt);
  ASSERT_TRUE(net.ok());
  auto gred = build_gred(net.value(), opt);
  ASSERT_TRUE(gred.ok());

  StretchOptions sopt;
  sopt.items = 80;
  const StretchResult r = measure_gred_stretch(gred.value(), sopt);
  EXPECT_EQ(r.hop_stretch.count, 80u);
  EXPECT_GE(r.hop_stretch.min, 1.0 - 1e-9);
  EXPECT_LT(r.hop_stretch.mean, 3.0);
  // Unit-weight links: both views identical.
  EXPECT_NEAR(r.hop_stretch.mean, r.latency_stretch.mean, 1e-9);
}

TEST(ExperimentsTest, HeadlineOrderingGredBeatsChord) {
  const ScenarioOptions opt = small_scenario();
  auto net = build_network(opt);
  ASSERT_TRUE(net.ok());
  auto gred = build_gred(net.value(), opt);
  auto ring = build_chord(net.value());
  ASSERT_TRUE(gred.ok());
  ASSERT_TRUE(ring.ok());
  const auto apsp =
      graph::all_pairs_shortest_paths(net.value().switches());

  StretchOptions sopt;
  sopt.items = 120;
  const StretchResult g = measure_gred_stretch(gred.value(), sopt);
  const StretchResult c =
      measure_chord_stretch(ring.value(), net.value(), apsp, sopt);
  EXPECT_LT(g.hop_stretch.mean * 1.5, c.hop_stretch.mean);
}

TEST(ExperimentsTest, BalanceMeasurementsConserveItems) {
  const ScenarioOptions opt = small_scenario();
  auto net = build_network(opt);
  ASSERT_TRUE(net.ok());
  auto gred = build_gred(net.value(), opt);
  auto ring = build_chord(net.value());
  ASSERT_TRUE(gred.ok());
  ASSERT_TRUE(ring.ok());

  const auto ids = workload_ids(20000, 3);
  const BalanceResult g = measure_gred_balance(gred.value(), ids);
  const BalanceResult c =
      measure_chord_balance(ring.value(), net.value(), ids);
  auto total = [](const std::vector<std::size_t>& loads) {
    std::size_t t = 0;
    for (std::size_t l : loads) t += l;
    return t;
  };
  EXPECT_EQ(total(g.loads), ids.size());
  EXPECT_EQ(total(c.loads), ids.size());
  // And the paper's ordering.
  EXPECT_LT(g.report.max_over_avg, c.report.max_over_avg);
}

TEST(ExperimentsTest, TableEntriesMeasurement) {
  const ScenarioOptions opt = small_scenario();
  auto net = build_network(opt);
  ASSERT_TRUE(net.ok());
  auto gred = build_gred(net.value(), opt);
  ASSERT_TRUE(gred.ok());
  const Summary s = measure_table_entries(gred.value().network());
  EXPECT_EQ(s.count, 30u);
  EXPECT_GT(s.mean, 2.0);
  EXPECT_LT(s.mean, 40.0);

  auto ring = build_chord(net.value());
  ASSERT_TRUE(ring.ok());
  const double fingers = mean_chord_fingers(ring.value(), net.value());
  EXPECT_GT(fingers, 3.0);
  EXPECT_LT(fingers, 20.0);
}

}  // namespace
}  // namespace gred::eval
