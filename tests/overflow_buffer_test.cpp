// Regression tests for common/overflow_buffer.hpp — specifically for
// the mid-round-reallocation defect it fixes. The sharded data plane's
// old spill vector only rewound once FULLY drained; under a sustained
// ring-full ping-pong (drain a little, spill a little more, never
// empty) the dead prefix in front of the unretired items grew without
// bound until the vector reallocated mid-round. These tests replay
// exactly that adversarial schedule and assert the storage address
// never moves.

#include "common/overflow_buffer.hpp"

#include <cstdint>
#include <deque>
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gred {
namespace {

TEST(OverflowBufferTest, FifoOrderAcrossPartialDrains) {
  OverflowBuffer<std::uint32_t> buf;
  buf.reset(/*live_capacity=*/8, /*compact_threshold=*/4);

  for (std::uint32_t v = 0; v < 5; ++v) buf.push(v);
  ASSERT_EQ(buf.pending(), 5u);
  EXPECT_EQ(buf.data()[0], 0u);

  buf.consume(2);
  ASSERT_EQ(buf.pending(), 3u);
  EXPECT_EQ(buf.data()[0], 2u);
  EXPECT_EQ(buf.data()[2], 4u);

  buf.push(5);
  buf.consume(3);  // dead prefix hits the threshold -> compaction
  ASSERT_EQ(buf.pending(), 1u);
  EXPECT_EQ(buf.data()[0], 5u);

  buf.consume(1);
  EXPECT_TRUE(buf.empty());
}

TEST(OverflowBufferTest, FullDrainRewindsForFree) {
  OverflowBuffer<std::uint32_t> buf;
  buf.reset(4, 16);
  buf.push(1);
  buf.push(2);
  buf.consume(2);
  EXPECT_TRUE(buf.empty());
  // After a full drain the next push lands at the front again.
  buf.push(3);
  EXPECT_EQ(buf.data(), buf.storage());
}

// The defect scenario: the buffer is never empty (one item always
// pending) while items stream through it. The old vector spill grew
// its dead prefix by one per iteration and reallocated once size
// passed capacity; the fixed buffer must keep one stable storage
// address forever.
TEST(OverflowBufferTest, SustainedPingPongNeverReallocates) {
  constexpr std::size_t kLive = 16;
  constexpr std::size_t kThreshold = 8;
  OverflowBuffer<std::uint32_t> buf;
  buf.reset(kLive, kThreshold);
  const std::uint32_t* const storage = buf.storage();
  const std::size_t cap = buf.storage_capacity();

  buf.push(0);
  buf.push(1);
  std::uint32_t next = 2;
  std::uint32_t expect = 0;
  // Far more iterations than the storage holds: any per-iteration
  // growth of the dead prefix would force a reallocation.
  for (int i = 0; i < 100000; ++i) {
    ASSERT_EQ(buf.data()[0], expect) << "FIFO order broken at " << i;
    buf.consume(1);  // drain one…
    ++expect;
    buf.push(next++);  // …spill one more: never empty, never full
    ASSERT_EQ(buf.storage(), storage) << "storage moved at " << i;
    ASSERT_EQ(buf.storage_capacity(), cap);
  }
}

// Randomized differential against a std::deque model: arbitrary
// push/consume interleavings stay within the documented storage bound
// and never move the storage, while contents match the model exactly.
TEST(OverflowBufferTest, RandomScheduleMatchesDequeModel) {
  constexpr std::size_t kLive = 32;
  constexpr std::size_t kThreshold = 8;
  OverflowBuffer<std::uint64_t> buf;
  buf.reset(kLive, kThreshold);
  const std::uint64_t* const storage = buf.storage();

  std::deque<std::uint64_t> model;
  Rng rng(0xdecaf123u);
  std::uint64_t next = 0;
  for (int step = 0; step < 50000; ++step) {
    if (model.size() < kLive && rng.next_double() < 0.55) {
      buf.push(next);
      model.push_back(next);
      ++next;
    } else if (!model.empty()) {
      // Consume a random batch, mimicking a partial ring drain.
      const std::size_t n =
          1 + static_cast<std::size_t>(rng.next_double() *
                                       static_cast<double>(model.size() - 1));
      ASSERT_LE(n, buf.pending());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf.data()[i], model[i]);
      }
      buf.consume(n);
      model.erase(model.begin(),
                  model.begin() + static_cast<std::ptrdiff_t>(n));
    }
    ASSERT_EQ(buf.pending(), model.size());
    ASSERT_EQ(buf.storage(), storage) << "storage moved at step " << step;
  }
}

}  // namespace
}  // namespace gred
