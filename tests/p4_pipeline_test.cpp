// P4GredProgram: the table-driven pipeline must make EXACTLY the same
// decision as the imperative Switch::process() for every packet — on
// hand-built switches, on whole controller-installed networks, and
// under randomized fuzzing.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "sden/p4_pipeline.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::sden {
namespace {

Packet make_packet(PacketType type, const std::string& id,
                   const geometry::Point2D& target) {
  Packet p;
  p.type = type;
  p.data_id = id;
  p.target = target;
  return p;
}

/// Runs both implementations on copies of the same packet and asserts
/// identical decisions and identical packet-header rewrites.
void expect_equivalent(const Switch& sw, const Packet& original) {
  const P4GredProgram prog = P4GredProgram::compile(sw);
  Packet a = original;
  Packet b = original;
  const Decision da = sw.process(a);
  const Decision db = prog.process(b);

  ASSERT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind));
  EXPECT_EQ(da.next_hop, db.next_hop);
  ASSERT_EQ(da.targets.size(), db.targets.size());
  for (std::size_t i = 0; i < da.targets.size(); ++i) {
    EXPECT_EQ(da.targets[i].server, db.targets[i].server);
    EXPECT_EQ(da.targets[i].via, db.targets[i].via);
  }
  EXPECT_EQ(a.vlink_dest, b.vlink_dest);
  EXPECT_EQ(a.vlink_sour, b.vlink_sour);
}

TEST(P4PipelineTest, CompileCountsMatchFlowTable) {
  Switch sw(0);
  sw.set_position({0.5, 0.5});
  sw.set_local_servers({0, 1, 2});
  sw.table().add_neighbor({1, {0.2, 0.2}, true, 1});
  sw.table().add_neighbor({2, {0.8, 0.8}, false, 1});
  sw.table().add_relay({5, 1, 3, 9});
  sw.table().add_rewrite({1, 7, 2});

  const P4GredProgram prog = P4GredProgram::compile(sw);
  EXPECT_EQ(prog.table_entry_count(),
            sw.table().entry_count() + sw.local_servers().size());
  // parse + vlink + 2 candidate stages + decide + server_sel.
  EXPECT_EQ(prog.stage_count(), 6u);
  const std::string dump = prog.describe();
  EXPECT_NE(dump.find("nbr_dist"), std::string::npos);
  EXPECT_NE(dump.find("server_sel"), std::string::npos);
}

TEST(P4PipelineTest, EquivalentOnHandBuiltCases) {
  Switch sw(1);
  sw.set_position({0.5, 0.5});
  sw.set_local_servers({10, 11});
  sw.table().add_neighbor({0, {0.1, 0.5}, true, 0});
  sw.table().add_neighbor({2, {0.9, 0.5}, false, 0});
  sw.table().add_relay({0, 0, 2, 2});
  sw.table().add_rewrite({10, 42, 0});

  // Deliver locally; forward physical; forward into a vlink; relay;
  // vlink endpoint; retrieval under rewrite.
  expect_equivalent(sw, make_packet(PacketType::kPlacement, "a", {0.5, 0.6}));
  expect_equivalent(sw, make_packet(PacketType::kPlacement, "b", {0.0, 0.5}));
  expect_equivalent(sw, make_packet(PacketType::kPlacement, "c", {1.0, 0.5}));
  {
    Packet p = make_packet(PacketType::kPlacement, "d", {1.0, 0.5});
    p.vlink_dest = 2;
    p.vlink_sour = 0;
    expect_equivalent(sw, p);
  }
  {
    Packet p = make_packet(PacketType::kPlacement, "e", {0.5, 0.5});
    p.vlink_dest = 1;  // we are the endpoint
    p.vlink_sour = 2;
    expect_equivalent(sw, p);
  }
  {
    Packet p = make_packet(PacketType::kPlacement, "f", {1.0, 0.5});
    p.vlink_dest = 7;  // no relay entry -> drop
    expect_equivalent(sw, p);
  }
  expect_equivalent(sw, make_packet(PacketType::kRetrieval, "g", {0.5, 0.5}));
  expect_equivalent(sw, make_packet(PacketType::kRemoval, "h", {0.5, 0.5}));
}

TEST(P4PipelineTest, EquivalentOnTransitSwitch) {
  Switch transit(9);  // no position
  transit.table().add_relay({1, 2, 3, 4});
  Packet relayed = make_packet(PacketType::kPlacement, "x", {0.3, 0.3});
  relayed.vlink_dest = 4;
  expect_equivalent(transit, relayed);
  expect_equivalent(transit,
                    make_packet(PacketType::kPlacement, "y", {0.3, 0.3}));
}

TEST(P4PipelineTest, TieBreakMatchesImperativeSwitch) {
  Switch sw(0);
  sw.set_position({0.5, 0.9});
  sw.set_local_servers({0});
  // Equidistant candidates -> (x, y) rank decides; both paths must pick
  // the same row.
  sw.table().add_neighbor({2, {0.6, 0.5}, true, 2});
  sw.table().add_neighbor({1, {0.4, 0.5}, true, 1});
  expect_equivalent(sw, make_packet(PacketType::kPlacement, "t", {0.5, 0.5}));
}

class P4FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(P4FuzzTest, EquivalentAcrossControllerInstalledNetwork) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  topology::WaxmanOptions wopt;
  wopt.node_count = 25;
  wopt.min_degree = 3;
  auto topo = topology::generate_waxman(wopt, rng);
  ASSERT_TRUE(topo.ok());
  auto sys = core::GredSystem::create(
      topology::uniform_edge_network(std::move(topo).value().graph, 3), {});
  ASSERT_TRUE(sys.ok());

  // Compile every switch and fuzz packets through both paths.
  for (int trial = 0; trial < 300; ++trial) {
    const SwitchId at = rng.next_below(25);
    Packet p = make_packet(
        rng.bernoulli(0.5) ? PacketType::kPlacement : PacketType::kRetrieval,
        "fuzz-" + std::to_string(trial),
        {rng.next_double(), rng.next_double()});
    if (rng.bernoulli(0.2)) {
      p.vlink_dest = rng.next_below(25);
      p.vlink_sour = rng.next_below(25);
    }
    expect_equivalent(sys.value().network().switch_at(at), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, P4FuzzTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

TEST(P4PipelineTest, WholeWalkEquivalence) {
  // Route full placements with the imperative network walk, then rerun
  // every per-switch decision through the compiled pipelines and check
  // the walk would have been identical.
  auto sys = core::GredSystem::create(
      topology::uniform_edge_network(topology::grid(5, 5), 2), {});
  ASSERT_TRUE(sys.ok());
  Rng rng(55);
  for (int i = 0; i < 50; ++i) {
    const std::string id = "walk-" + std::to_string(i);
    const geometry::Point2D target = [&] {
      const auto pos = crypto::DataKey(id).position();
      return geometry::Point2D{pos.x, pos.y};
    }();
    const SwitchId ingress = rng.next_below(25);
    auto report = sys.value().place(id, "v", ingress);
    ASSERT_TRUE(report.ok());

    // Replay: walk the same path through the pipelines.
    Packet pkt = make_packet(PacketType::kRetrieval, id, target);
    SwitchId cur = ingress;
    std::vector<SwitchId> path{cur};
    for (int hop = 0; hop < 200; ++hop) {
      const P4GredProgram prog =
          P4GredProgram::compile(sys.value().network().switch_at(cur));
      const Decision d = prog.process(pkt);
      if (d.kind != Decision::Kind::kForward) break;
      cur = d.next_hop;
      path.push_back(cur);
    }
    EXPECT_EQ(path, report.value().route.switch_path);
  }
}

}  // namespace
}  // namespace gred::sden
