// Waxman/BRITE generator, preset topologies, and edge-server attachment.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/properties.hpp"
#include "topology/edge_network.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::topology {
namespace {

// ---------- presets ----------

TEST(PresetsTest, Testbed6Shape) {
  const graph::Graph g = testbed6();
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 9u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_LE(graph::diameter(g), 2.0);
}

TEST(PresetsTest, RingLineGridStarComplete) {
  EXPECT_EQ(ring(5).edge_count(), 5u);
  EXPECT_EQ(line(5).edge_count(), 4u);
  EXPECT_EQ(grid(3, 4).edge_count(), 3u * 3 + 4u * 2);  // 17
  EXPECT_EQ(star(6).edge_count(), 5u);
  EXPECT_EQ(complete(5).edge_count(), 10u);
  EXPECT_TRUE(graph::is_connected(grid(7, 7)));
}

TEST(PresetsTest, DegenerateSizes) {
  EXPECT_EQ(ring(2).edge_count(), 0u);  // no ring below 3
  EXPECT_EQ(line(1).edge_count(), 0u);
  EXPECT_EQ(star(1).edge_count(), 0u);
}

// ---------- Waxman ----------

class WaxmanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WaxmanTest, ConnectedWithMinDegree) {
  const std::size_t min_degree = GetParam();
  Rng rng(1000 + min_degree);
  WaxmanOptions opt;
  opt.node_count = 60;
  opt.min_degree = min_degree;
  auto topo = generate_waxman(opt, rng);
  ASSERT_TRUE(topo.ok()) << topo.error().to_string();
  const graph::Graph& g = topo.value().graph;
  EXPECT_EQ(g.node_count(), 60u);
  EXPECT_TRUE(graph::is_connected(g));
  const graph::DegreeStats s = graph::degree_stats(g);
  EXPECT_GE(s.min, min_degree);
}

INSTANTIATE_TEST_SUITE_P(MinDegrees, WaxmanTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

TEST(WaxmanGenTest, PlacementsInPlane) {
  Rng rng(2);
  WaxmanOptions opt;
  opt.node_count = 40;
  opt.plane_size = 500.0;
  auto topo = generate_waxman(opt, rng);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().placements.size(), 40u);
  for (const auto& p : topo.value().placements) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 500.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 500.0);
  }
}

TEST(WaxmanGenTest, DeterministicGivenSeed) {
  WaxmanOptions opt;
  opt.node_count = 30;
  Rng r1(7), r2(7);
  auto a = generate_waxman(opt, r1);
  auto b = generate_waxman(opt, r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().graph.edges(), b.value().graph.edges());
}

TEST(WaxmanGenTest, LocalityBias) {
  // Waxman prefers short links: mean edge length must be well below the
  // mean random-pair distance (~0.52 * plane for uniform placement).
  Rng rng(3);
  WaxmanOptions opt;
  opt.node_count = 150;
  opt.min_degree = 2;
  opt.plane_size = 1000.0;
  auto topo = generate_waxman(opt, rng);
  ASSERT_TRUE(topo.ok());
  double total = 0.0;
  const auto edges = topo.value().graph.edges();
  for (const auto& [u, v] : edges) {
    total += geometry::distance(topo.value().placements[u],
                                topo.value().placements[v]);
  }
  EXPECT_LT(total / static_cast<double>(edges.size()), 0.45 * 1000.0);
}

TEST(WaxmanGenTest, RejectsBadOptions) {
  Rng rng(4);
  WaxmanOptions opt;
  opt.node_count = 0;
  EXPECT_FALSE(generate_waxman(opt, rng).ok());
  opt.node_count = 5;
  opt.min_degree = 5;
  EXPECT_FALSE(generate_waxman(opt, rng).ok());
}

TEST(WaxmanGenTest, SingleNode) {
  Rng rng(5);
  WaxmanOptions opt;
  opt.node_count = 1;
  opt.min_degree = 0;
  auto topo = generate_waxman(opt, rng);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().graph.node_count(), 1u);
}

// ---------- EdgeNetwork ----------

TEST(EdgeNetworkTest, UniformAttachment) {
  const EdgeNetwork net = uniform_edge_network(ring(5), 10);
  EXPECT_EQ(net.switch_count(), 5u);
  EXPECT_EQ(net.server_count(), 50u);
  for (SwitchId sw = 0; sw < 5; ++sw) {
    const auto& servers = net.servers_at(sw);
    ASSERT_EQ(servers.size(), 10u);
    for (std::size_t k = 0; k < servers.size(); ++k) {
      const EdgeServer& s = net.server(servers[k]);
      EXPECT_EQ(s.attached_to, sw);
      EXPECT_EQ(s.local_index, k);  // serial numbers 0..s-1
      EXPECT_EQ(s.capacity, 0u);
    }
  }
}

TEST(EdgeNetworkTest, ServerIdsDense) {
  const EdgeNetwork net = uniform_edge_network(line(3), 2);
  for (ServerId id = 0; id < net.server_count(); ++id) {
    EXPECT_EQ(net.server(id).id, id);
    EXPECT_EQ(net.server(id).name, "h" + std::to_string(id));
  }
}

TEST(EdgeNetworkTest, AttachValidation) {
  EdgeNetwork net(ring(3));
  EXPECT_FALSE(net.attach_server(99).ok());
  auto id = net.attach_server(1, 500);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(net.server(id.value()).capacity, 500u);
  EXPECT_EQ(net.servers_at(1).size(), 1u);
  EXPECT_TRUE(net.servers_at(0).empty());
}

TEST(EdgeNetworkTest, HeterogeneousAttachment) {
  Rng rng(6);
  HeterogeneousOptions opt;
  opt.min_servers_per_switch = 2;
  opt.max_servers_per_switch = 6;
  opt.min_capacity = 10;
  opt.max_capacity = 20;
  const EdgeNetwork net = heterogeneous_edge_network(grid(3, 3), opt, rng);
  EXPECT_EQ(net.switch_count(), 9u);
  std::set<std::size_t> counts;
  for (SwitchId sw = 0; sw < 9; ++sw) {
    const std::size_t c = net.servers_at(sw).size();
    EXPECT_GE(c, 2u);
    EXPECT_LE(c, 6u);
    counts.insert(c);
  }
  EXPECT_GT(counts.size(), 1u);  // genuinely heterogeneous
  for (const EdgeServer& s : net.all_servers()) {
    EXPECT_GE(s.capacity, 10u);
    EXPECT_LE(s.capacity, 20u);
  }
}

TEST(EdgeNetworkTest, AddSwitchAndDetach) {
  EdgeNetwork net = uniform_edge_network(ring(3), 1);
  const SwitchId sw = net.add_switch();
  EXPECT_EQ(sw, 3u);
  EXPECT_EQ(net.switch_count(), 4u);
  EXPECT_TRUE(net.servers_at(sw).empty());
  ASSERT_TRUE(net.attach_server(sw).ok());
  EXPECT_EQ(net.servers_at(sw).size(), 1u);
  net.detach_servers(sw);
  EXPECT_TRUE(net.servers_at(sw).empty());
}

}  // namespace
}  // namespace gred::topology
