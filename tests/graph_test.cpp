// Graph container, BFS/Dijkstra/APSP, and structural properties.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "graph/shortest_path.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::graph {
namespace {

Graph diamond() {
  // 0 - 1 - 3, 0 - 2 - 3, plus slow direct 0-3 (weight 10).
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1, 1.0).ok());
  EXPECT_TRUE(g.add_edge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.add_edge(0, 2, 2.0).ok());
  EXPECT_TRUE(g.add_edge(2, 3, 2.0).ok());
  EXPECT_TRUE(g.add_edge(0, 3, 10.0).ok());
  return g;
}

// ---------- Graph container ----------

TEST(GraphTest, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_TRUE(g.add_edge(0, 1).ok());
  EXPECT_TRUE(g.add_edge(1, 2, 2.5).ok());
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.add_node(), 3u);
  EXPECT_EQ(g.node_count(), 4u);
}

TEST(GraphTest, EdgeWeight) {
  Graph g(2);
  ASSERT_TRUE(g.add_edge(0, 1, 3.5).ok());
  auto w = g.edge_weight(0, 1);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w.value(), 3.5);
  EXPECT_FALSE(g.edge_weight(1, 1).ok());
  EXPECT_FALSE(g.edge_weight(5, 0).ok());
}

TEST(GraphTest, RejectsBadEdges) {
  Graph g(3);
  EXPECT_FALSE(g.add_edge(0, 0).ok());        // self loop
  EXPECT_FALSE(g.add_edge(0, 5).ok());        // out of range
  EXPECT_FALSE(g.add_edge(0, 1, 0.0).ok());   // non-positive weight
  EXPECT_FALSE(g.add_edge(0, 1, -1.0).ok());
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  EXPECT_FALSE(g.add_edge(0, 1).ok());        // parallel edge
  EXPECT_FALSE(g.add_edge(1, 0).ok());        // parallel reversed
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphTest, RemoveEdge) {
  Graph g(3);
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  ASSERT_TRUE(g.add_edge(1, 2).ok());
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
}

TEST(GraphTest, RemoveEdgesOf) {
  Graph g = topology::star(5);
  EXPECT_EQ(g.remove_edges_of(0), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(GraphTest, EdgesListedOnce) {
  Graph g = topology::ring(5);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 5u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphTest, DegreeAndNeighbors) {
  Graph g = topology::star(4);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0].to, 0u);
}

// ---------- BFS ----------

TEST(BfsTest, HopDistancesOnRing) {
  const Graph g = topology::ring(6);
  const SsspResult r = bfs(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(r.dist[3], 3.0);
  EXPECT_DOUBLE_EQ(r.dist[5], 1.0);
}

TEST(BfsTest, DisconnectedIsUnreachable) {
  Graph g(4);
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  const SsspResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[2], kUnreachable);
  EXPECT_EQ(r.parent[2], kNoNode);
}

TEST(BfsTest, IgnoresWeights) {
  const Graph g = diamond();
  const SsspResult r = bfs(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 1.0);  // the weight-10 edge is 1 hop
}

TEST(BfsTest, PathReconstruction) {
  const Graph g = topology::line(5);
  const SsspResult r = bfs(g, 0);
  const auto path = reconstruct_path(r, 4);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(reconstruct_path(r, 0), (std::vector<NodeId>{0}));
}

// ---------- Dijkstra ----------

TEST(DijkstraTest, PrefersLightPath) {
  const Graph g = diamond();
  const SsspResult r = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 2.0);  // 0-1-3
  const auto path = reconstruct_path(r, 3);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 3}));
}

TEST(DijkstraTest, MatchesBfsOnUnitWeights) {
  Rng rng(5);
  Graph g(30);
  for (int i = 0; i < 70; ++i) {
    const NodeId u = rng.next_below(30);
    const NodeId v = rng.next_below(30);
    if (u != v && !g.has_edge(u, v)) (void)g.add_edge(u, v, 1.0);
  }
  for (NodeId s = 0; s < 30; s += 7) {
    const SsspResult b = bfs(g, s);
    const SsspResult d = dijkstra(g, s);
    for (NodeId t = 0; t < 30; ++t) {
      EXPECT_DOUBLE_EQ(b.dist[t], d.dist[t]) << s << "->" << t;
    }
  }
}

TEST(DijkstraTest, UnreachableNode) {
  Graph g(3);
  ASSERT_TRUE(g.add_edge(0, 1, 1.0).ok());
  const SsspResult r = dijkstra(g, 0);
  EXPECT_EQ(r.dist[2], kUnreachable);
  EXPECT_TRUE(reconstruct_path(r, 2).empty());
}

// ---------- APSP ----------

TEST(ApspTest, SymmetricDistances) {
  const Graph g = topology::grid(4, 3);
  const ApspResult r = all_pairs_shortest_paths(g);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    for (NodeId j = 0; j < g.node_count(); ++j) {
      EXPECT_DOUBLE_EQ(r.dist(i, j), r.dist(j, i));
    }
    EXPECT_DOUBLE_EQ(r.dist(i, i), 0.0);
  }
}

TEST(ApspTest, PathsAreValidAndShortest) {
  const Graph g = topology::grid(5, 5);
  const ApspResult r = all_pairs_shortest_paths(g);
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId i = rng.next_below(25);
    const NodeId j = rng.next_below(25);
    const auto path = r.path(i, j, g);
    if (i == j) {
      EXPECT_EQ(path, std::vector<NodeId>{i});
      continue;
    }
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), i);
    EXPECT_EQ(path.back(), j);
    EXPECT_EQ(path.size() - 1, static_cast<std::size_t>(r.dist(i, j)));
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      EXPECT_TRUE(g.has_edge(path[k], path[k + 1]));
    }
  }
}

TEST(ApspTest, HopCount) {
  const Graph g = topology::line(4);
  const ApspResult r = all_pairs_shortest_paths(g);
  EXPECT_EQ(r.hop_count(0, 3), 3u);
  EXPECT_EQ(r.hop_count(2, 2), 0u);
}

TEST(ApspTest, HopCountUnreachableIsNoPath) {
  Graph g(3);
  ASSERT_TRUE(g.add_edge(0, 1, 1.0).ok());
  const ApspResult r = all_pairs_shortest_paths(g);
  EXPECT_EQ(r.hop_count(0, 2), kNoPath);
  EXPECT_EQ(r.hop_count(2, 1), kNoPath);
}

TEST(ApspTest, ParallelMatchesSerialExactly) {
  Rng rng(17);
  topology::WaxmanOptions opt;
  opt.node_count = 120;
  opt.min_degree = 3;
  auto topo = topology::generate_waxman(opt, rng);
  ASSERT_TRUE(topo.ok());
  const Graph& g = topo.value().graph;

  ThreadPool serial(1);
  ThreadPool parallel(4);
  for (bool weighted : {false, true}) {
    const ApspResult a = all_pairs_shortest_paths(g, weighted, &serial);
    const ApspResult b = all_pairs_shortest_paths(g, weighted, &parallel);
    EXPECT_EQ(a.dist, b.dist) << "weighted=" << weighted;
  }
}

TEST(ApspTest, WeightedMode) {
  const Graph g = diamond();
  const ApspResult r = all_pairs_shortest_paths(g, /*weighted=*/true);
  EXPECT_DOUBLE_EQ(r.dist(0, 3), 2.0);
  EXPECT_EQ(r.path(0, 3, g), (std::vector<NodeId>{0, 1, 3}));
}

TEST(ApspTest, TriangleInequality) {
  Rng rng(9);
  Graph g(20);
  for (int i = 0; i < 19; ++i) (void)g.add_edge(i, i + 1);
  for (int i = 0; i < 15; ++i) {
    const NodeId u = rng.next_below(20);
    const NodeId v = rng.next_below(20);
    if (u != v && !g.has_edge(u, v)) (void)g.add_edge(u, v);
  }
  const ApspResult r = all_pairs_shortest_paths(g);
  for (NodeId i = 0; i < 20; ++i) {
    for (NodeId j = 0; j < 20; ++j) {
      for (NodeId k = 0; k < 20; k += 3) {
        EXPECT_LE(r.dist(i, j), r.dist(i, k) + r.dist(k, j) + 1e-9);
      }
    }
  }
}

// ---------- properties ----------

TEST(PropertiesTest, Connectivity) {
  EXPECT_TRUE(is_connected(topology::ring(5)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
  Graph g(4);
  (void)g.add_edge(0, 1);
  (void)g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
}

TEST(PropertiesTest, ConnectedComponents) {
  Graph g(5);
  (void)g.add_edge(0, 1);
  (void)g.add_edge(2, 3);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(PropertiesTest, Diameter) {
  EXPECT_DOUBLE_EQ(diameter(topology::line(5)), 4.0);
  EXPECT_DOUBLE_EQ(diameter(topology::ring(6)), 3.0);
  EXPECT_DOUBLE_EQ(diameter(topology::complete(5)), 1.0);
  EXPECT_DOUBLE_EQ(diameter(Graph(1)), 0.0);
  Graph g(2);
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(PropertiesTest, DegreeStats) {
  const Graph g = topology::star(5);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
}

}  // namespace
}  // namespace gred::graph
