// Cross-topology integration matrix: every protocol operation exercised
// on every preset topology shape × server multiplicity, catching
// shape-specific regressions (stars stress the hub's DT degree, lines
// stress virtual links, complete graphs stress tie-breaking, grids
// stress cocircular positions).
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "topology/presets.hpp"

namespace gred::core {
namespace {

enum class Shape { kRing, kLine, kGrid, kStar, kComplete, kTestbed };

graph::Graph make_shape(Shape shape) {
  switch (shape) {
    case Shape::kRing: return topology::ring(9);
    case Shape::kLine: return topology::line(9);
    case Shape::kGrid: return topology::grid(3, 3);
    case Shape::kStar: return topology::star(9);
    case Shape::kComplete: return topology::complete(9);
    case Shape::kTestbed: return topology::testbed6();
  }
  return topology::ring(9);
}

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kRing: return "ring";
    case Shape::kLine: return "line";
    case Shape::kGrid: return "grid";
    case Shape::kStar: return "star";
    case Shape::kComplete: return "complete";
    case Shape::kTestbed: return "testbed";
  }
  return "?";
}

class TopologyMatrixTest
    : public ::testing::TestWithParam<std::tuple<Shape, std::size_t>> {
 protected:
  void SetUp() override {
    const auto [shape, servers] = GetParam();
    auto sys = GredSystem::create(
        topology::uniform_edge_network(make_shape(shape), servers), {});
    ASSERT_TRUE(sys.ok()) << sys.error().to_string();
    sys_.emplace(std::move(sys).value());
    switches_ = sys_->network().switch_count();
  }

  std::optional<GredSystem> sys_;
  std::size_t switches_ = 0;
};

TEST_P(TopologyMatrixTest, FullLifecycleEveryOperation) {
  GredSystem& sys = *sys_;
  Rng rng(1234);

  // Place, retrieve from everywhere, overwrite, remove.
  for (int i = 0; i < 40; ++i) {
    const std::string id = "m-" + std::to_string(i);
    ASSERT_TRUE(sys.place(id, "v" + std::to_string(i),
                          rng.next_below(switches_))
                    .ok());
  }
  for (int i = 0; i < 40; ++i) {
    const std::string id = "m-" + std::to_string(i);
    auto r = sys.retrieve(id, rng.next_below(switches_));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().route.found) << id;
    EXPECT_EQ(r.value().route.payload, "v" + std::to_string(i));
    EXPECT_GE(r.value().stretch, 1.0 - 1e-9);
  }
  ASSERT_TRUE(sys.place("m-0", "overwritten", 0).ok());
  EXPECT_EQ(sys.retrieve("m-0", switches_ - 1).value().route.payload,
            "overwritten");
  ASSERT_TRUE(sys.remove("m-1", 0).ok());
  EXPECT_FALSE(sys.retrieve("m-1", 0).value().route.found);

  // Replication + nearest-replica reads.
  ASSERT_TRUE(sys.place_replicated("hot", "data", 3, 0).ok());
  for (std::size_t in = 0; in < switches_; ++in) {
    auto r = sys.retrieve_nearest_replica("hot", 3, in);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
  }

  // Range extension round trip on server 0.
  ASSERT_TRUE(sys.extend_range(0).ok());
  ASSERT_TRUE(sys.retract_range(0).ok());

  // Loads conserve items: 39 singles (one removed) + 3 replicas.
  std::size_t total = 0;
  for (std::size_t l : sys.network().server_loads()) total += l;
  EXPECT_EQ(total, 39u + 3u);
}

TEST_P(TopologyMatrixTest, DeliveryIngressInvariance) {
  GredSystem& sys = *sys_;
  for (int i = 0; i < 15; ++i) {
    const std::string id = "inv-" + std::to_string(i);
    std::set<topology::ServerId> dests;
    for (std::size_t in = 0; in < switches_; ++in) {
      auto r = sys.place(id, "v", in);
      ASSERT_TRUE(r.ok());
      dests.insert(r.value().route.delivered_to[0]);
    }
    EXPECT_EQ(dests.size(), 1u) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyMatrixTest,
    ::testing::Combine(::testing::Values(Shape::kRing, Shape::kLine,
                                         Shape::kGrid, Shape::kStar,
                                         Shape::kComplete, Shape::kTestbed),
                       ::testing::Values<std::size_t>(1, 3)),
    [](const auto& info) {
      return std::string(shape_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ProtocolErrorPathTest, PlacementAtTransitIngressFails) {
  // Middle switch of a line without servers is a pure transit node;
  // injecting there is a caller error surfaced cleanly.
  topology::EdgeNetwork desc{topology::line(3)};
  (void)desc.attach_server(0);
  (void)desc.attach_server(2);
  auto sys = GredSystem::create(std::move(desc), {});
  ASSERT_TRUE(sys.ok());
  auto r = sys.value().place("x", "v", 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNoRoute);
}

}  // namespace
}  // namespace gred::core
