// SHA-256 against the FIPS 180-4 / NIST CAVS vectors, hex codec, and
// the paper's data-key derivation (Section III).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "crypto/data_key.hpp"
#include "crypto/hex.hpp"
#include "crypto/sha256.hpp"

namespace gred::crypto {
namespace {

std::string hex_of(std::string_view msg) { return to_hex(sha256(msg)); }

// ---------- SHA-256 known-answer tests ----------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, FourBlockMessage) {
  EXPECT_EQ(
      hex_of("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
             "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, SingleByte) {
  // NIST CAVS: one byte 0xbd.
  const std::uint8_t byte = 0xbd;
  EXPECT_EQ(to_hex(sha256(&byte, 1)),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b");
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // Length 55 forces padding into the same block, 56 into the next,
  // 64 an exact block. All must round-trip against the streaming API.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    const std::string msg(len, 'x');
    const Digest one_shot = sha256(msg);
    Sha256 h;
    for (char c : msg) h.update(&c, 1);  // byte-at-a-time
    EXPECT_EQ(h.finish(), one_shot) << "len=" << len;
  }
}

TEST(Sha256Test, SplitUpdateEquivalence) {
  Rng rng(2024);
  std::string msg(517, '\0');
  for (char& c : msg) c = static_cast<char>(rng.next_below(256));
  const Digest whole = sha256(msg);
  for (std::size_t cut : {1u, 63u, 64u, 65u, 300u, 516u}) {
    Sha256 h;
    h.update(msg.substr(0, cut));
    h.update(msg.substr(cut));
    EXPECT_EQ(h.finish(), whole) << "cut=" << cut;
  }
}

TEST(Sha256Test, ResetReusesObject) {
  Sha256 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(sha256("a"), sha256("b"));
  EXPECT_NE(sha256("abc"), sha256("abd"));
}

// ---------- hex ----------

TEST(HexTest, RoundTrip) {
  const std::uint8_t data[] = {0x00, 0x01, 0xab, 0xff};
  const std::string hex = to_hex(data, 4);
  EXPECT_EQ(hex, "0001abff");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 4u);
  EXPECT_EQ(std::memcmp(back.value().data(), data, 4), 0);
}

TEST(HexTest, UppercaseAccepted) {
  auto r = from_hex("ABCDEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_hex(r.value().data(), r.value().size()), "abcdef");
}

TEST(HexTest, OddLengthRejected) {
  EXPECT_FALSE(from_hex("abc").ok());
}

TEST(HexTest, NonHexRejected) {
  EXPECT_FALSE(from_hex("zz").ok());
}

TEST(HexTest, EmptyOk) {
  auto r = from_hex("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

// ---------- DataKey (Section III derivation) ----------

TEST(DataKeyTest, PositionInUnitSquare) {
  for (int i = 0; i < 1000; ++i) {
    const DataKey key("item-" + std::to_string(i));
    const SpacePoint p = key.position();
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(DataKeyTest, PositionMatchesManualDerivation) {
  // Independently derive from the digest: last 8 bytes, big-endian,
  // each 4-byte half scaled by 2^32 - 1.
  const DataKey key("manual-check");
  const Digest d = key.digest();
  std::uint32_t xi = 0, yi = 0;
  for (int i = 0; i < 4; ++i) {
    xi = (xi << 8) | d[24 + i];
    yi = (yi << 8) | d[28 + i];
  }
  EXPECT_DOUBLE_EQ(key.position().x, xi / 4294967295.0);
  EXPECT_DOUBLE_EQ(key.position().y, yi / 4294967295.0);
}

TEST(DataKeyTest, DeterministicForSameId) {
  const DataKey a("same"), b("same");
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_DOUBLE_EQ(a.position().x, b.position().x);
  EXPECT_EQ(a.mod(17), b.mod(17));
}

TEST(DataKeyTest, DigestConstructorAgrees) {
  const DataKey a("via-string");
  const DataKey b(a.digest());
  EXPECT_DOUBLE_EQ(a.position().x, b.position().x);
  EXPECT_DOUBLE_EQ(a.position().y, b.position().y);
  EXPECT_EQ(a.prefix64(), b.prefix64());
}

TEST(DataKeyTest, ModIsExactResidueOfFullDigest) {
  // Verify the 256-bit Horner reduction against small moduli by an
  // independent byte-by-byte reduction.
  for (const char* id : {"a", "b", "xyz", "data-123"}) {
    const DataKey key(id);
    for (std::uint64_t s : {2ull, 3ull, 7ull, 10ull, 12ull, 97ull}) {
      std::uint64_t expect = 0;
      for (std::uint8_t byte : key.digest()) {
        expect = (expect * 256 + byte) % s;
      }
      EXPECT_EQ(key.mod(s), expect) << id << " mod " << s;
    }
  }
}

TEST(DataKeyTest, ModZeroIsZero) {
  EXPECT_EQ(DataKey("x").mod(0), 0u);
}

TEST(DataKeyTest, ModOneIsZero) {
  EXPECT_EQ(DataKey("x").mod(1), 0u);
}

TEST(DataKeyTest, ModUniformity) {
  // H(d) mod s should spread evenly (Section V-B's balance argument).
  const std::uint64_t s = 10;
  std::vector<int> counts(s, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[DataKey("load-item-" + std::to_string(i)).mod(s)];
  }
  const double expected = static_cast<double>(n) / s;
  for (std::uint64_t r = 0; r < s; ++r) {
    EXPECT_NEAR(counts[r], expected, expected * 0.1) << "residue " << r;
  }
}

TEST(DataKeyTest, PositionUniformity) {
  // Quadrant chi-square on hashed positions.
  int quad[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const SpacePoint p = DataKey("pos-item-" + std::to_string(i)).position();
    quad[(p.x >= 0.5 ? 1 : 0) + (p.y >= 0.5 ? 2 : 0)]++;
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_NEAR(quad[q], n / 4.0, n / 4.0 * 0.1);
  }
}

TEST(ReplicaIdentifierTest, Format) {
  EXPECT_EQ(replica_identifier("video", 0), "video#0");
  EXPECT_EQ(replica_identifier("video", 12), "video#12");
}

TEST(ReplicaIdentifierTest, CopiesHashToDistinctPositions) {
  std::set<std::pair<double, double>> positions;
  for (unsigned c = 0; c < 8; ++c) {
    const SpacePoint p = DataKey(replica_identifier("obj", c)).position();
    positions.insert({p.x, p.y});
  }
  EXPECT_EQ(positions.size(), 8u);
}

}  // namespace
}  // namespace gred::crypto
