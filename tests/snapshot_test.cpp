// Snapshot capture / serialize / parse / restore round trips.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/snapshot.hpp"
#include "core/system.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::core {
namespace {

sden::SdenNetwork fresh_net(std::uint64_t seed) {
  Rng rng(seed);
  topology::WaxmanOptions wopt;
  wopt.node_count = 25;
  wopt.min_degree = 3;
  auto topo = topology::generate_waxman(wopt, rng);
  EXPECT_TRUE(topo.ok());
  return sden::SdenNetwork(topology::uniform_edge_network(
      std::move(topo).value().graph, 3));
}

TEST(SnapshotTest, CaptureRequiresInitialized) {
  Controller ctrl;
  EXPECT_FALSE(capture_snapshot(ctrl).ok());
}

TEST(SnapshotTest, TextRoundTripIsExact) {
  sden::SdenNetwork net = fresh_net(1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  auto snap = capture_snapshot(ctrl);
  ASSERT_TRUE(snap.ok());

  const std::string text = serialize_snapshot(snap.value());
  auto parsed = parse_snapshot(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().participants, snap.value().participants);
  // %.17g round-trips doubles exactly.
  EXPECT_EQ(parsed.value().positions, snap.value().positions);
}

TEST(SnapshotTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_snapshot("").ok());
  EXPECT_FALSE(parse_snapshot("not a snapshot\n3\n").ok());
  EXPECT_FALSE(parse_snapshot("gred-snapshot v1\n2\n0 0.5 0.5\n").ok());
  EXPECT_FALSE(parse_snapshot("gred-snapshot v1\nxyz\n").ok());
}

TEST(SnapshotTest, RestoreReproducesPlacementExactly) {
  // Controller A initializes normally; controller B restores A's
  // snapshot on an identical network. Every placement decision must
  // agree, even though B never ran MDS/CVT.
  sden::SdenNetwork net_a = fresh_net(2);
  sden::SdenNetwork net_b = fresh_net(2);
  Controller a;
  ASSERT_TRUE(a.initialize(net_a).ok());
  auto snap = capture_snapshot(a);
  ASSERT_TRUE(snap.ok());

  Controller b;
  ASSERT_TRUE(
      restore_snapshot(b, net_b, snap.value()).ok());
  EXPECT_TRUE(b.initialized());

  GredProtocol proto_a(net_a, a);
  GredProtocol proto_b(net_b, b);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "snap-" + std::to_string(i);
    const topology::SwitchId ingress = rng.next_below(25);
    auto ra = proto_a.place(id, "v", ingress);
    auto rb = proto_b.place(id, "v", ingress);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.value().route.delivered_to, rb.value().route.delivered_to);
    EXPECT_EQ(ra.value().route.switch_path, rb.value().route.switch_path);
  }
}

TEST(SnapshotTest, RestoreRejectsMismatchedNetwork) {
  sden::SdenNetwork net = fresh_net(4);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  auto snap = capture_snapshot(ctrl);
  ASSERT_TRUE(snap.ok());

  // A different network (different participant set) must be refused.
  sden::SdenNetwork other(
      topology::uniform_edge_network(topology::ring(5), 1));
  Controller fresh;
  EXPECT_FALSE(restore_snapshot(fresh, other, snap.value()).ok());
}

TEST(SnapshotTest, RestoreRejectsBadPositions) {
  sden::SdenNetwork net(
      topology::uniform_edge_network(topology::ring(3), 1));
  Controller ctrl;
  Snapshot bad;
  bad.participants = {0, 1, 2};
  bad.positions = {{0.1, 0.1}, {0.1, 0.1}, {0.5, 0.5}};  // duplicate
  EXPECT_FALSE(restore_snapshot(ctrl, net, bad).ok());
  bad.positions = {{0.1, 0.1}, {2.0, 0.1}, {0.5, 0.5}};  // out of range
  EXPECT_FALSE(restore_snapshot(ctrl, net, bad).ok());
}

TEST(SnapshotTest, RestoredControllerSupportsDynamics) {
  sden::SdenNetwork net_a = fresh_net(5);
  sden::SdenNetwork net_b = fresh_net(5);
  Controller a;
  ASSERT_TRUE(a.initialize(net_a).ok());
  auto snap = capture_snapshot(a);
  ASSERT_TRUE(snap.ok());
  Controller b;
  ASSERT_TRUE(restore_snapshot(b, net_b, snap.value()).ok());

  GredProtocol proto(net_b, b);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(proto.place("d-" + std::to_string(i), "v", i % 25).ok());
  }
  auto sw = b.add_switch(net_b, {0, 1}, 2);
  ASSERT_TRUE(sw.ok()) << sw.error().to_string();
  for (int i = 0; i < 50; ++i) {
    auto r = proto.retrieve("d-" + std::to_string(i), i % 25);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
  }
}

}  // namespace
}  // namespace gred::core
