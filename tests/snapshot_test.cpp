// Snapshot capture / serialize / parse / restore round trips.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/snapshot.hpp"
#include "core/system.hpp"
#include "sden/hot_key_cache.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::core {
namespace {

sden::SdenNetwork fresh_net(std::uint64_t seed) {
  Rng rng(seed);
  topology::WaxmanOptions wopt;
  wopt.node_count = 25;
  wopt.min_degree = 3;
  auto topo = topology::generate_waxman(wopt, rng);
  EXPECT_TRUE(topo.ok());
  return sden::SdenNetwork(topology::uniform_edge_network(
      std::move(topo).value().graph, 3));
}

TEST(SnapshotTest, CaptureRequiresInitialized) {
  Controller ctrl;
  EXPECT_FALSE(capture_snapshot(ctrl).ok());
}

TEST(SnapshotTest, TextRoundTripIsExact) {
  sden::SdenNetwork net = fresh_net(1);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  auto snap = capture_snapshot(ctrl);
  ASSERT_TRUE(snap.ok());

  const std::string text = serialize_snapshot(snap.value());
  auto parsed = parse_snapshot(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().participants, snap.value().participants);
  // %.17g round-trips doubles exactly.
  EXPECT_EQ(parsed.value().positions, snap.value().positions);
}

TEST(SnapshotTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_snapshot("").ok());
  EXPECT_FALSE(parse_snapshot("not a snapshot\n3\n").ok());
  EXPECT_FALSE(parse_snapshot("gred-snapshot v1\n2\n0 0.5 0.5\n").ok());
  EXPECT_FALSE(parse_snapshot("gred-snapshot v1\nxyz\n").ok());
}

TEST(SnapshotTest, RestoreReproducesPlacementExactly) {
  // Controller A initializes normally; controller B restores A's
  // snapshot on an identical network. Every placement decision must
  // agree, even though B never ran MDS/CVT.
  sden::SdenNetwork net_a = fresh_net(2);
  sden::SdenNetwork net_b = fresh_net(2);
  Controller a;
  ASSERT_TRUE(a.initialize(net_a).ok());
  auto snap = capture_snapshot(a);
  ASSERT_TRUE(snap.ok());

  Controller b;
  ASSERT_TRUE(
      restore_snapshot(b, net_b, snap.value()).ok());
  EXPECT_TRUE(b.initialized());

  GredProtocol proto_a(net_a, a);
  GredProtocol proto_b(net_b, b);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "snap-" + std::to_string(i);
    const topology::SwitchId ingress = rng.next_below(25);
    auto ra = proto_a.place(id, "v", ingress);
    auto rb = proto_b.place(id, "v", ingress);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.value().route.delivered_to, rb.value().route.delivered_to);
    EXPECT_EQ(ra.value().route.switch_path, rb.value().route.switch_path);
  }
}

TEST(SnapshotTest, RestoreRejectsMismatchedNetwork) {
  sden::SdenNetwork net = fresh_net(4);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  auto snap = capture_snapshot(ctrl);
  ASSERT_TRUE(snap.ok());

  // A different network (different participant set) must be refused.
  sden::SdenNetwork other(
      topology::uniform_edge_network(topology::ring(5), 1));
  Controller fresh;
  EXPECT_FALSE(restore_snapshot(fresh, other, snap.value()).ok());
}

TEST(SnapshotTest, RestoreRejectsBadPositions) {
  sden::SdenNetwork net(
      topology::uniform_edge_network(topology::ring(3), 1));
  Controller ctrl;
  Snapshot bad;
  bad.participants = {0, 1, 2};
  bad.positions = {{0.1, 0.1}, {0.1, 0.1}, {0.5, 0.5}};  // duplicate
  EXPECT_FALSE(restore_snapshot(ctrl, net, bad).ok());
  bad.positions = {{0.1, 0.1}, {2.0, 0.1}, {0.5, 0.5}};  // out of range
  EXPECT_FALSE(restore_snapshot(ctrl, net, bad).ok());
}

TEST(SnapshotTest, RestoredControllerSupportsDynamics) {
  sden::SdenNetwork net_a = fresh_net(5);
  sden::SdenNetwork net_b = fresh_net(5);
  Controller a;
  ASSERT_TRUE(a.initialize(net_a).ok());
  auto snap = capture_snapshot(a);
  ASSERT_TRUE(snap.ok());
  Controller b;
  ASSERT_TRUE(restore_snapshot(b, net_b, snap.value()).ok());

  GredProtocol proto(net_b, b);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(proto.place("d-" + std::to_string(i), "v", i % 25).ok());
  }
  auto sw = b.add_switch(net_b, {0, 1}, 2);
  ASSERT_TRUE(sw.ok()) << sw.error().to_string();
  for (int i = 0; i < 50; ++i) {
    auto r = proto.retrieve("d-" + std::to_string(i), i % 25);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
  }
}

TEST(SnapshotTest, RewritesRoundTripAndRestoreInstallsThem) {
  // A network with an active range extension: the snapshot must carry
  // the rewrite (pre-fix it was silently dropped), serialize/parse must
  // reach a fixed point, and a restore on an identical fresh network
  // must reinstall the delegation so new stores land on the delegate.
  sden::SdenNetwork net_a = fresh_net(7);
  sden::SdenNetwork net_b = fresh_net(7);
  Controller a;
  ASSERT_TRUE(a.initialize(net_a).ok());
  ASSERT_TRUE(a.extend_range(net_a, 0).ok());
  const topology::SwitchId home_sw = net_a.server(0).info().attached_to;
  const auto installed = net_a.switch_at(home_sw).table().match_rewrite(0);
  ASSERT_TRUE(installed.has_value());

  auto snap = capture_snapshot(a, net_a);
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap.value().rewrites.size(), 1u);
  EXPECT_EQ(snap.value().rewrites[0].first, home_sw);
  EXPECT_EQ(snap.value().rewrites[0].second.replacement,
            installed->replacement);

  const std::string text = serialize_snapshot(snap.value());
  EXPECT_NE(text.find("rewrites 1"), std::string::npos);
  auto parsed = parse_snapshot(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(serialize_snapshot(parsed.value()), text);
  ASSERT_EQ(parsed.value().rewrites.size(), 1u);

  Controller b;
  ASSERT_TRUE(restore_snapshot(b, net_b, parsed.value()).ok());
  const auto restored = net_b.switch_at(home_sw).table().match_rewrite(0);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->replacement, installed->replacement);
  EXPECT_EQ(restored->via_switch, installed->via_switch);

  // A store owned by server 0 is delivered to the delegate.
  GredProtocol proto(net_b, b);
  bool exercised = false;
  for (int i = 0; i < 3000 && !exercised; ++i) {
    const std::string id = "rw-" + std::to_string(i);
    const auto p = b.expected_placement(net_b, crypto::DataKey(id));
    ASSERT_TRUE(p.ok());
    if (p.value().server != 0) continue;
    auto r = proto.place(id, "v", home_sw);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().route.delivered_to.size(), 1u);
    EXPECT_EQ(r.value().route.delivered_to.front(), installed->replacement);
    exercised = true;
  }
  EXPECT_TRUE(exercised) << "no probe id hashed to server 0";
}

TEST(SnapshotTest, RestoreRejectsInvalidRewrites) {
  sden::SdenNetwork net(
      topology::uniform_edge_network(topology::ring(3), 1));
  Controller seed_ctrl;
  sden::SdenNetwork seed_net(
      topology::uniform_edge_network(topology::ring(3), 1));
  ASSERT_TRUE(seed_ctrl.initialize(seed_net).ok());
  auto snap = capture_snapshot(seed_ctrl);
  ASSERT_TRUE(snap.ok());

  // Unknown server id.
  Snapshot bad = snap.value();
  sden::RewriteEntry rw;
  rw.original = 99;
  rw.replacement = 1;
  rw.via_switch = 1;
  bad.rewrites = {{0, rw}};
  Controller c1;
  EXPECT_FALSE(restore_snapshot(c1, net, bad).ok());

  // Missing handoff link (ring(3) has all pairs adjacent; use a line).
  sden::SdenNetwork line_net(
      topology::uniform_edge_network(topology::line(3), 1));
  Controller line_seed;
  sden::SdenNetwork line_seed_net(
      topology::uniform_edge_network(topology::line(3), 1));
  ASSERT_TRUE(line_seed.initialize(line_seed_net).ok());
  auto line_snap = capture_snapshot(line_seed);
  ASSERT_TRUE(line_snap.ok());
  Snapshot no_edge = line_snap.value();
  rw.original = 0;       // server 0 on switch 0
  rw.replacement = 2;    // server on switch 2
  rw.via_switch = 2;     // but line(3) has no 0-2 link
  no_edge.rewrites = {{0, rw}};
  Controller c2;
  EXPECT_FALSE(restore_snapshot(c2, line_net, no_edge).ok());
}

// A restore replaces the whole control-plane state: no answer cached
// before the restore may be served afterwards, whatever path rebuilt
// the plans. Pins the explicit hot-key-cache epoch bump at the end of
// restore_snapshot (defense in depth over the per-mutation
// invalidations riding on initialize_with_positions).
TEST(SnapshotTest, RestoreDropsCachedRetrievalAnswers) {
  auto built = GredSystem::create(
      topology::uniform_edge_network(topology::grid(4, 4), 2));
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();
  sden::HotKeyCache& cache = sys.network().enable_hot_key_cache();

  ASSERT_TRUE(sys.place("snap-item", "payload-v1", 0).ok());
  ASSERT_TRUE(sys.retrieve("snap-item", 3).ok());  // learn-mode fill
  auto warm = sys.retrieve("snap-item", 3);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm.value().served_from_cache);

  auto snap = capture_snapshot(sys.controller(), sys.network());
  ASSERT_TRUE(snap.ok());
  const std::uint64_t invalidations_before = cache.invalidations();
  ASSERT_TRUE(
      restore_snapshot(sys.controller(), sys.network(), snap.value()).ok());
  EXPECT_GT(cache.invalidations(), invalidations_before);

  // First post-restore retrieval must route for real — and agree with
  // the uncached answer bit for bit.
  auto after = sys.retrieve("snap-item", 3);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().served_from_cache);
  cache.set_enabled(false);
  auto plain = sys.retrieve("snap-item", 3);
  cache.set_enabled(true);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(after.value().route.payload, plain.value().route.payload);
  EXPECT_EQ(after.value().route.responder, plain.value().route.responder);
}

}  // namespace
}  // namespace gred::core
