// GredProtocol / GredSystem: end-to-end placement and retrieval,
// stretch reporting, replication, and the metrics helpers.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "core/system.hpp"
#include "topology/presets.hpp"

namespace gred::core {
namespace {

using topology::SwitchId;

GredSystem make_system(graph::Graph g, std::size_t per_switch,
                       VirtualSpaceOptions opt = {}) {
  auto sys = GredSystem::create(
      topology::uniform_edge_network(std::move(g), per_switch), opt);
  EXPECT_TRUE(sys.ok());
  return std::move(sys).value();
}

// ---------- metrics ----------

TEST(MetricsTest, RoutingStretch) {
  EXPECT_DOUBLE_EQ(routing_stretch(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(routing_stretch(3, 0), 3.0);
  EXPECT_DOUBLE_EQ(routing_stretch(4, 2), 2.0);
  EXPECT_DOUBLE_EQ(routing_stretch(2, 2), 1.0);
}

TEST(MetricsTest, StretchCollector) {
  StretchCollector c;
  c.add(4, 2);
  c.add(2, 2);
  c.add_stretch(3.0);
  EXPECT_EQ(c.count(), 3u);
  EXPECT_DOUBLE_EQ(c.summary().mean, 2.0);
}

TEST(MetricsTest, LoadBalanceReport) {
  const LoadBalanceReport r = load_balance({10, 10, 10, 30});
  EXPECT_DOUBLE_EQ(r.max_over_avg, 2.0);
  EXPECT_EQ(r.max_load, 30u);
  EXPECT_DOUBLE_EQ(r.avg_load, 15.0);
  EXPECT_LT(r.jain, 1.0);
  EXPECT_GT(r.cov, 0.0);
  const LoadBalanceReport empty = load_balance({});
  EXPECT_DOUBLE_EQ(empty.max_over_avg, 0.0);
}

// ---------- place / retrieve round trips ----------

TEST(ProtocolTest, PlaceThenRetrieveRoundTrip) {
  GredSystem sys = make_system(topology::testbed6(), 2);
  Rng rng(71);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "rt-" + std::to_string(i);
    const std::string payload = "payload-" + std::to_string(i);
    const SwitchId in1 = rng.next_below(6);
    const SwitchId in2 = rng.next_below(6);
    auto placed = sys.place(id, payload, in1);
    ASSERT_TRUE(placed.ok()) << placed.error().to_string();
    auto got = sys.retrieve(id, in2);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().route.found);
    EXPECT_EQ(got.value().route.payload, payload);
    // Placement and retrieval from any ingress land on the same server.
    EXPECT_EQ(got.value().route.responder,
              placed.value().route.delivered_to[0]);
  }
}

TEST(ProtocolTest, RetrievalRouteIndependentOfIngress) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  ASSERT_TRUE(sys.place("fixed", "v", 0).ok());
  std::set<topology::ServerId> responders;
  for (SwitchId in = 0; in < 16; ++in) {
    auto r = sys.retrieve("fixed", in);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
    responders.insert(r.value().route.responder);
  }
  EXPECT_EQ(responders.size(), 1u);
}

TEST(ProtocolTest, StretchReportedSanely) {
  GredSystem sys = make_system(topology::grid(5, 5), 2);
  Rng rng(72);
  for (int i = 0; i < 100; ++i) {
    auto r = sys.place("s-" + std::to_string(i), "v", rng.next_below(25));
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.value().stretch, 1.0 - 1e-9);
    EXPECT_GE(r.value().selected_hops, r.value().shortest_hops);
    EXPECT_EQ(r.value().route.switch_path.front(), r.value().ingress);
  }
}

TEST(ProtocolTest, MissingDataReportsNotFound) {
  GredSystem sys = make_system(topology::ring(4), 1);
  auto r = sys.retrieve("never-placed", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().route.found);
}

TEST(ProtocolTest, OverwriteKeepsSingleCopy) {
  GredSystem sys = make_system(topology::ring(4), 1);
  ASSERT_TRUE(sys.place("dup", "v1", 0).ok());
  ASSERT_TRUE(sys.place("dup", "v2", 1).ok());
  auto r = sys.retrieve("dup", 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().route.payload, "v2");
  std::size_t total = 0;
  for (std::size_t l : sys.network().server_loads()) total += l;
  EXPECT_EQ(total, 1u);
}

TEST(ProtocolTest, EveryIngressDeliversToSameServer) {
  // One-overlay-hop determinism: the terminal server depends only on
  // the data id, never on where the request enters.
  GredSystem sys = make_system(topology::grid(4, 4), 3);
  for (int i = 0; i < 20; ++i) {
    const std::string id = "det-" + std::to_string(i);
    std::set<topology::ServerId> dests;
    for (SwitchId in = 0; in < 16; ++in) {
      auto r = sys.place(id, "v", in);
      ASSERT_TRUE(r.ok());
      dests.insert(r.value().route.delivered_to[0]);
    }
    EXPECT_EQ(dests.size(), 1u) << id;
  }
}

// ---------- removal ----------

TEST(ProtocolTest, RemoveErasesData) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  ASSERT_TRUE(sys.place("victim", "v", 0).ok());
  auto removed = sys.remove("victim", 5);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.value().route.found);
  auto r = sys.retrieve("victim", 10);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().route.found);
  std::size_t total = 0;
  for (std::size_t l : sys.network().server_loads()) total += l;
  EXPECT_EQ(total, 0u);
}

TEST(ProtocolTest, RemoveMissingReportsNotFound) {
  GredSystem sys = make_system(topology::ring(4), 1);
  auto r = sys.remove("never-there", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().route.found);
}

TEST(ProtocolTest, RemoveIsIdempotent) {
  GredSystem sys = make_system(topology::ring(4), 1);
  ASSERT_TRUE(sys.place("once", "v", 0).ok());
  ASSERT_TRUE(sys.remove("once", 1).ok());
  auto again = sys.remove("once", 2);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().route.found);
}

TEST(ProtocolTest, RemoveWorksThroughRangeExtension) {
  GredSystem sys = make_system(topology::ring(4), 1, {});
  // Find an id owned by server 0, extend, place (goes to delegate),
  // then remove — the dual-query must erase it at the delegate.
  std::string owned;
  for (int i = 0; owned.empty() && i < 2000; ++i) {
    const std::string id = "rmext-" + std::to_string(i);
    auto p = sys.controller().expected_placement(sys.network(),
                                                 crypto::DataKey(id));
    ASSERT_TRUE(p.ok());
    if (p.value().server == 0) owned = id;
  }
  ASSERT_FALSE(owned.empty());
  ASSERT_TRUE(sys.extend_range(0).ok());
  ASSERT_TRUE(sys.place(owned, "v", 2).ok());
  EXPECT_EQ(sys.network().server(0).item_count(), 0u);
  auto removed = sys.remove(owned, 1);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.value().route.found);
  auto r = sys.retrieve(owned, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().route.found);
}

// ---------- replication ----------

TEST(ReplicationTest, PlacesKCopies) {
  GredSystem sys = make_system(topology::grid(4, 4), 2);
  auto reports = sys.place_replicated("video", "data", 3, 0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value().size(), 3u);
  std::size_t total = 0;
  for (std::size_t l : sys.network().server_loads()) total += l;
  EXPECT_EQ(total, 3u);
}

TEST(ReplicationTest, ZeroCopiesRejected) {
  GredSystem sys = make_system(topology::ring(4), 1);
  EXPECT_FALSE(sys.place_replicated("x", "v", 0, 0).ok());
  EXPECT_FALSE(sys.retrieve_nearest_replica("x", 0, 0).ok());
}

TEST(ReplicationTest, NearestReplicaFoundFromEveryIngress) {
  GredSystem sys = make_system(topology::grid(5, 5), 2);
  ASSERT_TRUE(sys.place_replicated("popular", "content", 4, 0).ok());
  for (SwitchId in = 0; in < 25; ++in) {
    auto r = sys.retrieve_nearest_replica("popular", 4, in);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r.value().route.found);
    EXPECT_EQ(r.value().route.payload, "content");
  }
}

TEST(ReplicationTest, MoreReplicasNeverHurtMeanDistance) {
  // With more copies, the mean retrieval hop count must not grow.
  GredSystem sys1 = make_system(topology::grid(6, 6), 2);
  GredSystem sys4 = make_system(topology::grid(6, 6), 2);
  Rng rng(73);
  double hops1 = 0, hops4 = 0;
  const int items = 30;
  for (int i = 0; i < items; ++i) {
    const std::string id = "repl-" + std::to_string(i);
    ASSERT_TRUE(sys1.place_replicated(id, "v", 1, 0).ok());
    ASSERT_TRUE(sys4.place_replicated(id, "v", 4, 0).ok());
  }
  for (int i = 0; i < items; ++i) {
    const std::string id = "repl-" + std::to_string(i);
    const SwitchId in = rng.next_below(36);
    auto r1 = sys1.retrieve_nearest_replica(id, 1, in);
    auto r4 = sys4.retrieve_nearest_replica(id, 4, in);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r4.ok());
    hops1 += static_cast<double>(r1.value().selected_hops);
    hops4 += static_cast<double>(r4.value().selected_hops);
  }
  EXPECT_LE(hops4, hops1);
}

// ---------- system facade ----------

TEST(SystemTest, CreateFailsOnEmptyNetwork) {
  EXPECT_FALSE(
      GredSystem::create(topology::EdgeNetwork(topology::ring(3))).ok());
}

TEST(SystemTest, MoveSemantics) {
  GredSystem a = make_system(topology::ring(4), 1);
  ASSERT_TRUE(a.place("m", "v", 0).ok());
  GredSystem b = std::move(a);
  auto r = b.retrieve("m", 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().route.found);
}

TEST(SystemTest, ManagementPassThrough) {
  GredSystem sys = make_system(topology::ring(4), 1);
  EXPECT_TRUE(sys.extend_range(0).ok());
  EXPECT_TRUE(sys.retract_range(0).ok());
  auto sw = sys.add_switch({0, 1}, 1);
  ASSERT_TRUE(sw.ok());
  EXPECT_TRUE(sys.remove_switch(sw.value()).ok());
}

}  // namespace
}  // namespace gred::core
