// Data-plane fast-path tests: the compiled route plan held
// bit-identical to the live pipeline on random topologies, plan
// invalidation on every mutation route, the indexed FlowTable,
// ItemStore, EventQueue ordering, and thread-count invariance of the
// parallel retrieval replay.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/delay_experiment.hpp"
#include "core/system.hpp"
#include "crypto/data_key.hpp"
#include "sden/event_queue.hpp"
#include "sden/flow_table.hpp"
#include "sden/item_store.hpp"
#include "sden/network.hpp"
#include "sden/reference_router.hpp"
#include "topology/waxman.hpp"

namespace gred {
namespace {

topology::EdgeNetwork make_net(std::size_t switches, std::uint64_t seed) {
  Rng rng(seed);
  topology::WaxmanOptions opt;
  opt.node_count = switches;
  opt.min_degree = 3;
  auto topo = topology::generate_waxman(opt, rng);
  EXPECT_TRUE(topo.ok());
  topology::EdgeNetwork net(std::move(topo).value().graph);
  for (std::size_t s = 0; s < switches; ++s) {
    // 1-4 servers per switch so H(d) mod s exercises several ranges.
    const std::size_t count = 1 + rng.next_below(4);
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_TRUE(net.attach_server(s).ok());
    }
  }
  return net;
}

sden::Packet make_packet(const std::string& id, sden::PacketType type,
                         const std::string& payload = "") {
  sden::Packet p;
  p.type = type;
  p.data_id = id;
  p.payload = payload;
  const crypto::DataKey key(id);
  p.target = {key.position().x, key.position().y};
  p.set_key(key);
  return p;
}

void expect_identical(const sden::RouteResult& a, const sden::RouteResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status.ok(), b.status.ok()) << what;
  if (!a.status.ok() && !b.status.ok()) {
    // FAILED routes must stay bit-identical too: same classified code,
    // same message (both sides build them via route_errors).
    EXPECT_EQ(a.status.error().code, b.status.error().code) << what;
    EXPECT_EQ(a.status.error().message, b.status.error().message) << what;
  }
  EXPECT_EQ(a.switch_path, b.switch_path) << what;
  EXPECT_EQ(a.delivered_to, b.delivered_to) << what;
  EXPECT_EQ(a.responder, b.responder) << what;
  EXPECT_EQ(a.payload, b.payload) << what;
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_DOUBLE_EQ(a.path_cost, b.path_cost) << what;
}

// The compiled fast path must produce the exact RouteResult of the
// live Switch::process walk for every packet type, on several random
// Waxman substrates.
TEST(DataPlaneDifferential, FastPathMatchesLivePipeline) {
  for (const std::size_t n : {24u, 64u}) {
    for (const std::uint64_t seed : {501u, 502u}) {
      auto sys = core::GredSystem::create(
          make_net(n, seed), core::VirtualSpaceOptions{});
      ASSERT_TRUE(sys.ok());
      sden::SdenNetwork& net = sys.value().network();
      Rng rng(seed * 7);

      sden::RouteResult fast;
      sden::Packet scratch;
      for (std::size_t i = 0; i < 60; ++i) {
        const std::string id =
            "diff-" + std::to_string(seed) + "-" + std::to_string(i);
        const sden::SwitchId ingress = rng.next_below(n);

        // Placement: fast path first (stores), then the reference
        // overwrites the same id — identical path and delivery.
        scratch = make_packet(id, sden::PacketType::kPlacement, "v-" + id);
        net.route(scratch, ingress, fast);
        ASSERT_TRUE(fast.status.ok());
        const sden::RouteResult ref_place = sden::reference_route(
            net, make_packet(id, sden::PacketType::kPlacement, "v-" + id),
            ingress);
        expect_identical(fast, ref_place, "placement " + id);

        // Retrieval from a different random ingress.
        const sden::SwitchId r_ingress = rng.next_below(n);
        scratch = make_packet(id, sden::PacketType::kRetrieval);
        net.route(scratch, r_ingress, fast);
        ASSERT_TRUE(fast.status.ok());
        EXPECT_TRUE(fast.found) << id;
        EXPECT_EQ(fast.payload, "v-" + id);
        const sden::RouteResult ref_get = sden::reference_route(
            net, make_packet(id, sden::PacketType::kRetrieval), r_ingress);
        expect_identical(fast, ref_get, "retrieval " + id);

        // Removal via the fast path; the reference then misses.
        scratch = make_packet(id, sden::PacketType::kRemoval);
        net.route(scratch, r_ingress, fast);
        ASSERT_TRUE(fast.status.ok());
        EXPECT_TRUE(fast.found) << id;
        const sden::RouteResult ref_gone = sden::reference_route(
            net, make_packet(id, sden::PacketType::kRetrieval), r_ingress);
        EXPECT_FALSE(ref_gone.found) << id;
      }
    }
  }
}

// Mutating a switch through any accessor must invalidate the compiled
// plan: the next route sees the new forwarding state.
TEST(DataPlaneDifferential, PlanRebuildsAfterMutation) {
  auto sys =
      core::GredSystem::create(make_net(24, 77), core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  sden::SdenNetwork& net = sys.value().network();

  const std::string id = "plan-rebuild";
  ASSERT_TRUE(sys.value().place(id, "payload", 0).ok());
  sden::RouteResult result;
  sden::Packet pkt = make_packet(id, sden::PacketType::kRetrieval);
  net.route(pkt, 0, result);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.found);
  ASSERT_GE(result.switch_path.size(), 1u);
  const sden::SwitchId terminal = result.switch_path.back();

  // Wipe the terminal switch's state: the same packet must now be
  // dropped there instead of delivered (the plan was recompiled).
  net.switch_at(terminal).reset();
  pkt = make_packet(id, sden::PacketType::kRetrieval);
  net.route(pkt, terminal, result);
  EXPECT_FALSE(result.status.ok());
  EXPECT_FALSE(result.found);
}

// FAILED routes must match the live pipeline bit for bit: classified
// error code, message, partial switch_path, path_cost — and the
// failure-path contract (found == false, delivered_to empty) holds.
TEST(DataPlaneDifferential, FailedRoutesMatchLivePipeline) {
  auto sys =
      core::GredSystem::create(make_net(32, 611), core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  sden::SdenNetwork& net = sys.value().network();

  // Find an item whose route covers at least 3 switches so we can
  // break state mid-path.
  std::string id;
  sden::RouteResult healthy;
  for (std::size_t i = 0; i < 200 && healthy.switch_path.size() < 3; ++i) {
    id = "fail-" + std::to_string(i);
    ASSERT_TRUE(sys.value().place(id, "v", i % 32).ok());
    sden::Packet pkt = make_packet(id, sden::PacketType::kRetrieval);
    net.route(pkt, (i * 7) % 32, healthy);
    ASSERT_TRUE(healthy.status.ok());
  }
  ASSERT_GE(healthy.switch_path.size(), 3u);
  const sden::SwitchId ingress = healthy.switch_path.front();
  const sden::SwitchId terminal = healthy.switch_path.back();

  const auto run_both = [&](const std::string& what) {
    sden::RouteResult fast;
    sden::Packet pkt = make_packet(id, sden::PacketType::kRetrieval);
    net.route(pkt, ingress, fast);
    const sden::RouteResult ref = sden::reference_route(
        net, make_packet(id, sden::PacketType::kRetrieval), ingress);
    expect_identical(fast, ref, what);
    EXPECT_FALSE(fast.status.ok()) << what;
    EXPECT_FALSE(fast.found) << what;
    EXPECT_TRUE(fast.delivered_to.empty()) << what;
    EXPECT_EQ(fast.responder, topology::kNoServer) << what;
    EXPECT_TRUE(fast.payload.empty()) << what;
    return fast;
  };

  // Crashed terminal switch: the packet black-holes on the approach
  // hop, keeping the partial path up to the drop.
  sden::FaultState faults;
  faults.seed = 99;
  faults.set_switch_down(terminal, true);
  net.set_fault_state(&faults);
  {
    const sden::RouteResult r = run_both("terminal switch down");
    EXPECT_EQ(r.status.error().code, ErrorCode::kLinkDown);
    EXPECT_LT(r.switch_path.size(), healthy.switch_path.size());
    EXPECT_FALSE(r.switch_path.empty());
  }

  // Crashed ingress: the packet never enters; the path stays empty.
  faults.set_switch_down(terminal, false);
  faults.set_switch_down(ingress, true);
  {
    const sden::RouteResult r = run_both("ingress switch down");
    EXPECT_EQ(r.status.error().code, ErrorCode::kLinkDown);
    EXPECT_TRUE(r.switch_path.empty());
  }

  // Hard-down link on the first healthy hop.
  faults.set_switch_down(ingress, false);
  faults.set_link_drop(healthy.switch_path[0], healthy.switch_path[1], 1.0);
  {
    const sden::RouteResult r = run_both("hard-down link");
    EXPECT_EQ(r.status.error().code, ErrorCode::kLinkDown);
    EXPECT_EQ(r.switch_path.size(), 1u);
  }

  // Flaky links everywhere: both routers must agree packet by packet
  // on the deterministic drop decision (same hash inputs both sides).
  faults.clear_link(healthy.switch_path[0], healthy.switch_path[1]);
  for (const auto& [u, v] : net.description().switches().edges()) {
    faults.set_link_drop(u, v, 0.35);
  }
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const std::string flaky_id = "flaky-" + std::to_string(i);
    ASSERT_TRUE(net.fault_state() != nullptr);
    sden::RouteResult fast;
    sden::Packet pkt = make_packet(flaky_id, sden::PacketType::kRetrieval);
    net.route(pkt, ingress, fast);
    const sden::RouteResult ref = sden::reference_route(
        net, make_packet(flaky_id, sden::PacketType::kRetrieval), ingress);
    expect_identical(fast, ref, flaky_id);
    if (!fast.status.ok()) ++dropped;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, 40u);
  net.set_fault_state(nullptr);

  // With faults cleared, the original route works again.
  sden::RouteResult after;
  sden::Packet pkt = make_packet(id, sden::PacketType::kRetrieval);
  net.route(pkt, ingress, after);
  EXPECT_TRUE(after.status.ok());
  EXPECT_TRUE(after.found);

  // Table-miss classification: a reset switch mid-path turns into a
  // non-DT transit node; both routers report kNoRoute identically.
  net.switch_at(terminal).reset();
  {
    const sden::RouteResult r = run_both("reset terminal switch");
    EXPECT_EQ(r.status.error().code, ErrorCode::kNoRoute);
    EXPECT_EQ(r.switch_path, healthy.switch_path);
  }
}

// A read-only inspection pass (reference router, metrics, validators)
// must leave a freshly built plan intact: only mutating accessors may
// invalidate it.
TEST(DataPlaneDifferential, PlanSurvivesReadOnlyInspection) {
  auto sys =
      core::GredSystem::create(make_net(24, 303), core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  sden::SdenNetwork& net = sys.value().network();
  ASSERT_TRUE(sys.value().place("inspect", "v", 0).ok());

  // First route builds the plan.
  sden::RouteResult r;
  sden::Packet pkt = make_packet("inspect", sden::PacketType::kRetrieval);
  net.route(pkt, 0, r);
  ASSERT_TRUE(r.status.ok());
  ASSERT_FALSE(net.route_plan_stale());

  // Reference-route the same packet (walks const_switch_at every hop)
  // and sweep every switch read-only: the plan must stay fresh.
  (void)sden::reference_route(
      net, make_packet("inspect", sden::PacketType::kRetrieval), 0);
  std::size_t dt = 0;
  for (sden::SwitchId s = 0; s < net.switch_count(); ++s) {
    if (net.const_switch_at(s).dt_participant()) ++dt;
  }
  EXPECT_GT(dt, 0u);
  EXPECT_FALSE(net.route_plan_stale());

  // The mutable accessor conservatively invalidates.
  (void)net.switch_at(0);
  EXPECT_TRUE(net.route_plan_stale());
}

TEST(FlowTableIndex, RelayFirstInstalledWinsAndDedup) {
  sden::FlowTable table;
  table.add_relay({1, 2, 3, 9});   // first entry for dest 9
  table.add_relay({4, 5, 6, 9});   // different sour, same dest
  ASSERT_EQ(table.relays().size(), 2u);

  const sden::RelayEntry* hit = table.find_relay(9);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->sour, 1u);
  EXPECT_EQ(hit->succ, 3u);

  // Re-adding the same <sour, dest> updates in place — no growth, and
  // the dest match still resolves to the first-installed entry.
  table.add_relay({1, 2, 7, 9});
  EXPECT_EQ(table.relays().size(), 2u);
  hit = table.find_relay(9);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->succ, 7u);

  EXPECT_EQ(table.find_relay(8), nullptr);
}

TEST(FlowTableIndex, RelayLookupScalesWithoutDuplicates) {
  // O(1) add_relay regression: installing the same relay set twice
  // (controller re-installation) must not duplicate entries, and every
  // dest must keep resolving to its first entry.
  sden::FlowTable table;
  const std::size_t n = 2000;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      table.add_relay({i, i, i + 1, 10000 + i});
    }
  }
  ASSERT_EQ(table.relays().size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const sden::RelayEntry* hit = table.find_relay(10000 + i);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->sour, i);
  }
}

TEST(FlowTableIndex, RewriteRemoveReindexes) {
  sden::FlowTable table;
  table.add_rewrite({10, 20, 1});
  table.add_rewrite({11, 21, 2});
  table.add_rewrite({12, 22, 3});
  table.remove_rewrite(11);
  ASSERT_EQ(table.rewrites().size(), 2u);
  EXPECT_EQ(table.find_rewrite(11), nullptr);
  const sden::RewriteEntry* tail = table.find_rewrite(12);
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(tail->replacement, 22u);
  EXPECT_EQ(tail->via_switch, 3u);
}

TEST(ItemStoreTest, UpsertFindEraseIterate) {
  sden::ItemStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.find("missing"), nullptr);

  const std::size_t n = 500;
  for (std::size_t i = 0; i < n; ++i) {
    store.upsert("item-" + std::to_string(i), "v" + std::to_string(i));
  }
  EXPECT_EQ(store.size(), n);

  // Overwrite keeps the size and replaces the payload.
  store.upsert("item-7", "updated");
  EXPECT_EQ(store.size(), n);
  ASSERT_NE(store.find("item-7"), nullptr);
  EXPECT_EQ(*store.find("item-7"), "updated");

  // Erase every odd item; evens must stay reachable through the
  // backward-shift compaction.
  for (std::size_t i = 1; i < n; i += 2) {
    EXPECT_TRUE(store.erase("item-" + std::to_string(i)));
  }
  EXPECT_FALSE(store.erase("item-1"));
  EXPECT_EQ(store.size(), n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* hit = store.find("item-" + std::to_string(i));
    if (i % 2 == 0) {
      ASSERT_NE(hit, nullptr) << i;
    } else {
      EXPECT_EQ(hit, nullptr) << i;
    }
  }

  // Iteration yields exactly the survivors.
  std::size_t seen = 0;
  for (const auto& [id, payload] : store) {
    EXPECT_EQ(id.rfind("item-", 0), 0u);
    EXPECT_FALSE(payload.empty());
    ++seen;
  }
  EXPECT_EQ(seen, n / 2);
}

TEST(EventQueueTest, OrdersByTimeWithFifoTies) {
  sden::EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });  // FIFO among equals
  q.schedule_at(3.0, [&] { order.push_back(4); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.processed(), 4u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);

  // Scheduling into the past clamps to now (time stays monotonic), and
  // handlers scheduling new events keep running.
  q.schedule_at(1.0, [&q, &order] {
    order.push_back(5);
    q.schedule_after(0.5, [&order] { order.push_back(6); });
  });
  q.run();
  EXPECT_EQ(order.back(), 6);
  EXPECT_DOUBLE_EQ(q.now(), 3.5);
}

// The parallel retrieval replay must produce the same aggregate result
// for any thread count (deterministic sharding + reduction).
TEST(ParallelReplay, ThreadCountInvariance) {
  auto sys =
      core::GredSystem::create(make_net(32, 909), core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  std::vector<std::string> ids;
  Rng place_rng(3);
  for (std::size_t i = 0; i < 40; ++i) {
    ids.push_back("replay-" + std::to_string(i));
    ASSERT_TRUE(
        sys.value().place(ids.back(), "payload", place_rng.next_below(32)).ok());
  }

  ThreadPool one(1);
  ThreadPool four(4);
  core::DelayModelOptions serial;
  serial.pool = &one;
  core::DelayModelOptions parallel;
  parallel.pool = &four;

  Rng r1(42);
  auto s = core::RetrievalDelayExperiment(sys.value(), serial)
               .run_uniform(ids, 300, 0.05, r1);
  Rng r2(42);
  auto p = core::RetrievalDelayExperiment(sys.value(), parallel)
               .run_uniform(ids, 300, 0.05, r2);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s.value().requests, p.value().requests);
  EXPECT_EQ(s.value().not_found, p.value().not_found);
  EXPECT_EQ(s.value().delay.count, p.value().delay.count);
  EXPECT_DOUBLE_EQ(s.value().delay.mean, p.value().delay.mean);
  EXPECT_DOUBLE_EQ(s.value().delay.p50, p.value().delay.p50);
  EXPECT_DOUBLE_EQ(s.value().delay.p99, p.value().delay.p99);
  EXPECT_DOUBLE_EQ(s.value().makespan_ms, p.value().makespan_ms);
}

}  // namespace
}  // namespace gred
