// Disaster soak: a correlated region kill replayed mid-soak against a
// live system with k = 2 region-diverse replication, riding alongside
// topology churn and fallback retrievals. The end-to-end statement of
// the disaster-tolerance layer:
//   - a region kill aligned with the replication regions loses ZERO
//     items at k = 2 (every item keeps a copy outside the dead box),
//   - every repair brings survivors straight back to the factor,
//   - the controller writes exactly one dynamics event-log entry per
//     repair operation (one remove-switch per dead region member),
//   - recovery accounting agrees: nothing lost, nothing left degraded.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_session.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "topology/presets.hpp"

namespace gred {
namespace {

using core::GredSystem;
using core::ReplicationOptions;
using core::RetryPolicy;
using topology::SwitchId;

class DisasterSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::event_log().clear();
  }
  void TearDown() override { obs::set_enabled(false); }
};

std::size_t holder_count(const GredSystem& sys, const std::string& id) {
  std::size_t n = 0;
  const auto& net = sys.network();
  for (topology::ServerId s = 0; s < net.server_count(); ++s) {
    if (net.server(s).contains(id)) ++n;
  }
  return n;
}

TEST_F(DisasterSoakTest, RegionKillMidSoakLosesNothingAtK2) {
  auto built = GredSystem::create(
      topology::uniform_edge_network(topology::grid(5, 5), 2));
  ASSERT_TRUE(built.ok()) << built.error().to_string();
  GredSystem sys = std::move(built).value();
  ReplicationOptions ropts;
  ropts.factor = 2;
  ropts.region_diverse = true;
  ropts.region_grid = 2;
  ASSERT_TRUE(sys.enable_replication(ropts).ok());

  Rng rng(0xD15A57E8u);
  std::vector<std::string> live;
  int next_id = 0;
  auto alive_ingress = [&](const sden::FaultState& faults) -> SwitchId {
    const auto& parts = sys.controller().space().participants();
    for (;;) {
      const SwitchId s = parts[rng.next_below(parts.size())];
      if (!faults.switch_is_down(s)) return s;
    }
  };
  for (int i = 0; i < 100; ++i) {
    const std::string id = "soak-" + std::to_string(next_id++);
    ASSERT_TRUE(sys.place(id, "payload-" + id, alive_ingress({})).ok());
    live.push_back(id);
  }

  // One correlated box kill aligned with the replication regions, plus
  // a partition riding along. The kill box IS a replication region, so
  // region-diverse k = 2 guarantees a survivor copy for every item.
  fault::DisasterPlanOptions dopt;
  dopt.region_kills = 1;
  dopt.partitions = 1;
  dopt.region_shape = fault::RegionShape::kBox;
  dopt.box_grid = ropts.region_grid;
  dopt.schedule_length = 200;
  dopt.stale_window = 6;
  dopt.partition_length = 12;
  dopt.seed = 20260809;
  auto plan = fault::FaultPlan::generate_disasters(
      sys.network().description(), sys.controller().space().participants(),
      sys.controller().space().positions(), dopt);
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  ASSERT_EQ(plan.value().count(fault::FaultKind::kRegionKill), 1u);
  std::size_t kill_members = 0;
  for (const auto& e : plan.value().events()) {
    if (e.kind == fault::FaultKind::kRegionKill) kill_members = e.members.size();
  }
  ASSERT_GE(kill_members, 2u) << "kill box too small to be correlated";

  std::set<std::size_t> deadlines;
  for (const auto& e : plan.value().events()) {
    deadlines.insert(e.at_event);
    deadlines.insert(e.repair_at);
  }

  fault::FaultSession session(sys, std::move(plan).value());
  session.enable_recovery_tracking();

  const std::size_t log_before = obs::event_log().size();

  RetryPolicy policy;
  policy.max_attempts = 6;
  std::size_t step = 0;
  for (const std::size_t t : deadlines) {
    auto advanced = session.advance(t);
    ASSERT_TRUE(advanced.ok())
        << "t=" << t << ": " << advanced.error().to_string();

    // Churn rides along with the disasters.
    if (step % 2 == 1) {
      (void)sys.add_link(alive_ingress(session.state()),
                         alive_ingress(session.state()));
    }
    if (step == 2) {
      const SwitchId u = alive_ingress(session.state());
      const SwitchId v = alive_ingress(session.state());
      (void)sys.add_switch({u, v}, /*servers=*/2);
    }
    const std::string id = "soak-" + std::to_string(next_id++);
    auto placed =
        sys.place(id, "payload-" + id, alive_ingress(session.state()));
    if (placed.ok()) {
      live.push_back(id);
    } else {
      EXPECT_NE(placed.error().code, ErrorCode::kInternal)
          << placed.error().to_string();
    }

    // Fallback retrievals of random live items stay classified.
    for (int i = 0; i < 8; ++i) {
      const std::string& rid = live[rng.next_below(live.size())];
      auto out = sys.retrieve_with_fallback(
          rid, alive_ingress(session.state()), policy);
      ASSERT_TRUE(out.ok()) << "t=" << t << " " << rid << ": "
                            << out.error().to_string();
      if (!out.value().found) {
        EXPECT_NE(out.value().final_status.error().code,
                  ErrorCode::kInternal)
            << "t=" << t << " " << rid;
      }
    }
    ++step;
  }

  auto finished = session.finish();
  ASSERT_TRUE(finished.ok()) << finished.error().to_string();
  EXPECT_TRUE(session.done());
  EXPECT_FALSE(session.state().any());

  // Region-diverse k = 2 vs a one-region kill: zero lost items, and
  // the repair restored the factor for every single one.
  EXPECT_EQ(session.items_lost(), 0u);
  for (const std::string& id : live) {
    EXPECT_EQ(holder_count(sys, id), 2u) << "lost or degraded " << id;
  }
  // Whatever went unavailable came back (the partition window may have
  // isolated items transiently; the heal restored reachability).
  for (const auto& [id, rec] : session.recovery()) {
    EXPECT_FALSE(rec.lost) << id;
    EXPECT_FALSE(rec.degraded) << id;
  }

  // Exactly one dynamics event-log entry per controller repair: one
  // remove-switch per dead region member (the partition heals with no
  // controller op). Churn entries are accounted separately.
  std::size_t removals = 0;
  std::size_t churn_adds = 0;
  for (const auto& ev : obs::event_log().snapshot()) {
    if (ev.seq < log_before) continue;
    if (ev.kind == obs::EventKind::kRemoveSwitch) {
      EXPECT_TRUE(ev.ok) << "repair failed: " << ev.status;
      ++removals;
    } else {
      ++churn_adds;
    }
  }
  EXPECT_EQ(removals, kill_members);
  EXPECT_GT(churn_adds, 0u);
}

}  // namespace
}  // namespace gred
