// Unit tests of the fault-tolerance layer: k-nearest site queries,
// replica placement and repair on the controller, retry-with-fallback
// retrieval, and the deterministic fault plan / session machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "crypto/data_key.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_session.hpp"
#include "geometry/site_grid.hpp"
#include "sden/fault_state.hpp"
#include "topology/presets.hpp"

namespace gred {
namespace {

using core::GredSystem;
using core::ReplicationOptions;
using core::RetryPolicy;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultPlanOptions;
using fault::FaultSession;
using topology::SwitchId;

// --- SiteGrid k-nearest ---

TEST(SiteGridNearestK, SingleNearestMatchesNearest) {
  Rng rng(41);
  std::vector<geometry::Point2D> sites;
  for (int i = 0; i < 64; ++i) {
    sites.push_back({rng.next_double(), rng.next_double()});
  }
  geometry::SiteGrid grid(sites, geometry::Rect{});
  for (int q = 0; q < 200; ++q) {
    const geometry::Point2D p{rng.uniform(-0.2, 1.2),
                              rng.uniform(-0.2, 1.2)};
    const auto k1 = grid.nearest_k(p, 1);
    ASSERT_EQ(k1.size(), 1u);
    EXPECT_EQ(k1[0], grid.nearest(p));
  }
}

TEST(SiteGridNearestK, MatchesBruteForceOrder) {
  Rng rng(42);
  std::vector<geometry::Point2D> sites;
  for (int i = 0; i < 48; ++i) {
    sites.push_back({rng.next_double(), rng.next_double()});
  }
  geometry::SiteGrid grid(sites, geometry::Rect{});
  for (int q = 0; q < 100; ++q) {
    const geometry::Point2D p{rng.next_double(), rng.next_double()};
    const std::size_t k = 1 + q % 5;
    const auto got = grid.nearest_k(p, k);
    // Brute force under the grid's exact total order: distance, then
    // lexicographic position, then site index.
    std::vector<std::size_t> want(sites.size());
    for (std::size_t i = 0; i < want.size(); ++i) want[i] = i;
    std::sort(want.begin(), want.end(), [&](std::size_t a, std::size_t b) {
      if (geometry::closer_to(p, sites[a], sites[b])) return true;
      if (geometry::closer_to(p, sites[b], sites[a])) return false;
      return a < b;
    });
    want.resize(std::min(k, want.size()));
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(SiteGridNearestK, ClampsToSiteCount) {
  std::vector<geometry::Point2D> sites{{0.1, 0.1}, {0.9, 0.9}};
  geometry::SiteGrid grid(sites, geometry::Rect{});
  const auto all = grid.nearest_k({0.0, 0.0}, 5);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], 0u);
  EXPECT_EQ(all[1], 1u);
  EXPECT_TRUE(grid.nearest_k({0.5, 0.5}, 0).empty());
}

// --- Controller replication ---

GredSystem make_system(std::size_t width, std::size_t height,
                       std::size_t servers_per_switch = 2) {
  auto built = GredSystem::create(topology::uniform_edge_network(
      topology::grid(width, height), servers_per_switch));
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

std::vector<topology::ServerId> holders(const GredSystem& sys,
                                        const std::string& id) {
  std::vector<topology::ServerId> out;
  const auto& net = sys.network();
  for (topology::ServerId s = 0; s < net.server_count(); ++s) {
    if (net.server(s).contains(id)) out.push_back(s);
  }
  return out;
}

TEST(Replication, ReplicaHomesStartAtPrimaryAndAreDistinct) {
  GredSystem sys = make_system(3, 4);
  ASSERT_TRUE(sys.enable_replication().ok());
  for (int i = 0; i < 20; ++i) {
    const crypto::DataKey key("homes-" + std::to_string(i));
    const auto homes = sys.controller().replica_homes(key);
    ASSERT_EQ(homes.size(), 2u);
    EXPECT_NE(homes[0], homes[1]);
    const crypto::SpacePoint pos = key.position();
    EXPECT_EQ(homes[0], sys.controller().home_switch({pos.x, pos.y}));
  }
}

TEST(Replication, PlaceStoresFactorCopiesAtReplicaTargets) {
  GredSystem sys = make_system(3, 4);
  ASSERT_TRUE(sys.enable_replication(ReplicationOptions{2}).ok());
  EXPECT_EQ(sys.controller().replication_factor(), 2u);
  for (int i = 0; i < 25; ++i) {
    const std::string id = "rep-" + std::to_string(i);
    ASSERT_TRUE(sys.place(id, "v", static_cast<SwitchId>(i % 12)).ok());
    auto targets =
        sys.controller().replica_targets(sys.network(), crypto::DataKey(id));
    ASSERT_TRUE(targets.ok());
    const auto held_by = holders(sys, id);
    EXPECT_EQ(held_by.size(), targets.value().size()) << id;
    for (const auto target : targets.value()) {
      EXPECT_TRUE(std::find(held_by.begin(), held_by.end(), target) !=
                  held_by.end())
          << id << " missing from server " << target;
    }
  }
}

TEST(Replication, EnableReplicationBackfillsExistingItems) {
  GredSystem sys = make_system(3, 4);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        sys.place("pre-" + std::to_string(i), "v", static_cast<SwitchId>(i % 12))
            .ok());
  }
  ASSERT_TRUE(sys.enable_replication().ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(holders(sys, "pre-" + std::to_string(i)).size(), 2u);
  }
}

TEST(Replication, RemoveSwitchRestoresFactor) {
  GredSystem sys = make_system(4, 4);
  ASSERT_TRUE(sys.enable_replication().ok());
  std::vector<std::string> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back("dyn-" + std::to_string(i));
    ASSERT_TRUE(sys.place(ids.back(), "v", static_cast<SwitchId>(i % 16)).ok());
  }
  // Removing any switch loses its copies; the dynamics tail must bring
  // every item straight back to two holders.
  ASSERT_TRUE(sys.remove_switch(5).ok());
  for (const std::string& id : ids) {
    EXPECT_EQ(holders(sys, id).size(), 2u) << id;
  }
}

TEST(Replication, RetrieveWithFallbackSurvivesDeadPrimary) {
  GredSystem sys = make_system(3, 4);
  ASSERT_TRUE(sys.enable_replication().ok());
  const std::string id = "failover-item";
  ASSERT_TRUE(sys.place(id, "precious", 0).ok());
  const auto homes = sys.controller().replica_homes(crypto::DataKey(id));
  ASSERT_EQ(homes.size(), 2u);

  // Healthy network: the first attempt succeeds, nothing recovers.
  auto healthy = sys.retrieve_with_fallback(id, homes[1]);
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy.value().found);
  EXPECT_EQ(healthy.value().attempts, 1u);
  EXPECT_FALSE(healthy.value().recovered);

  // Primary home crashes (stale tables still point at it): the first
  // attempt black-holes with kLinkDown, the fallback re-targets the
  // replica and recovers.
  sden::FaultState faults;
  faults.set_switch_down(homes[0], true);
  sys.network().set_fault_state(&faults);
  auto out = sys.retrieve_with_fallback(id, homes[1]);
  sys.network().set_fault_state(nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().found);
  EXPECT_TRUE(out.value().recovered);
  EXPECT_GE(out.value().fallbacks, 1u);
  EXPECT_GT(out.value().backoff_ms, 0.0);
  EXPECT_EQ(out.value().report.route.payload, "precious");
}

TEST(Replication, FallbackMissIsClassifiedNotFound) {
  GredSystem sys = make_system(3, 4);
  ASSERT_TRUE(sys.enable_replication().ok());
  RetryPolicy policy;
  auto out = sys.retrieve_with_fallback("never-stored", 3, policy);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().found);
  EXPECT_EQ(out.value().attempts, policy.max_attempts);
  EXPECT_EQ(out.value().final_status.error().code, ErrorCode::kNotFound);
}

// --- FaultPlan ---

TEST(FaultPlanTest, DeterministicForSeed) {
  const auto net = topology::uniform_edge_network(topology::grid(4, 4), 2);
  FaultPlanOptions opts;
  opts.event_count = 8;
  opts.seed = 7;
  auto a = FaultPlan::generate(net, opts);
  auto b = FaultPlan::generate(net, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto& ea = a.value().events();
  const auto& eb = b.value().events();
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_FALSE(ea.empty());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].at_event, eb[i].at_event);
    EXPECT_EQ(ea[i].subject, eb[i].subject);
    EXPECT_EQ(ea[i].peer, eb[i].peer);
    EXPECT_EQ(ea[i].repair_at, eb[i].repair_at);
  }
  opts.seed = 8;
  auto c = FaultPlan::generate(net, opts);
  ASSERT_TRUE(c.ok());
  bool differs = c.value().events().size() != ea.size();
  for (std::size_t i = 0; !differs && i < ea.size(); ++i) {
    differs = c.value().events()[i].at_event != ea[i].at_event ||
              c.value().events()[i].subject != ea[i].subject;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same plan";
}

TEST(FaultPlanTest, EventsAreOrderedAndWellFormed) {
  const auto net = topology::uniform_edge_network(topology::grid(4, 4), 2);
  FaultPlanOptions opts;
  opts.event_count = 12;
  opts.stale_window = 6;
  opts.seed = 99;
  auto plan = FaultPlan::generate(net, opts);
  ASSERT_TRUE(plan.ok());
  std::size_t prev = 0;
  std::set<SwitchId> crashed;
  for (const auto& e : plan.value().events()) {
    EXPECT_GE(e.at_event, prev);
    prev = e.at_event;
    EXPECT_EQ(e.repair_at, e.at_event + opts.stale_window);
    EXPECT_LT(e.repair_at, opts.schedule_length);
    if (e.kind == FaultKind::kSwitchCrash) {
      EXPECT_LT(e.subject, net.switch_count());
      EXPECT_TRUE(crashed.insert(e.subject).second)
          << "switch " << e.subject << " crashed twice";
    } else {
      // Link events reference a real link and never touch a switch
      // that an earlier event crashed.
      EXPECT_TRUE(net.switches().has_edge(e.subject, e.peer));
      EXPECT_EQ(crashed.count(e.subject), 0u);
      EXPECT_EQ(crashed.count(e.peer), 0u);
      if (e.kind == FaultKind::kLinkFlaky) {
        EXPECT_EQ(e.drop_probability, opts.flaky_drop_probability);
      } else {
        EXPECT_EQ(e.drop_probability, 1.0);
      }
    }
  }
}

TEST(FaultPlanTest, RejectsDegenerateOptions) {
  const auto net = topology::uniform_edge_network(topology::grid(3, 3), 1);
  FaultPlanOptions opts;
  opts.schedule_length = 4;
  opts.stale_window = 4;
  EXPECT_FALSE(FaultPlan::generate(net, opts).ok());
  opts = {};
  opts.crash_weight = 0.0;
  opts.link_down_weight = 0.0;
  opts.flaky_weight = 0.0;
  EXPECT_FALSE(FaultPlan::generate(net, opts).ok());
  opts = {};
  opts.flaky_drop_probability = 0.0;
  EXPECT_FALSE(FaultPlan::generate(net, opts).ok());
}

// --- FaultSession ---

TEST(FaultSessionTest, InjectsThenRepairsAndEndsClean) {
  GredSystem sys = make_system(4, 4);
  ASSERT_TRUE(sys.enable_replication().ok());
  std::vector<std::string> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back("sess-" + std::to_string(i));
    ASSERT_TRUE(sys.place(ids.back(), "v", static_cast<SwitchId>(i % 16)).ok());
  }

  FaultPlanOptions opts;
  opts.event_count = 6;
  opts.schedule_length = 120;
  opts.stale_window = 5;
  opts.seed = 3;
  auto plan = FaultPlan::generate(sys.network().description(), opts);
  ASSERT_TRUE(plan.ok());
  const std::size_t planned = plan.value().events().size();
  ASSERT_GT(planned, 0u);

  FaultSession session(sys, std::move(plan).value());
  EXPECT_EQ(sys.network().fault_state(), &session.state());

  // Advance to just past the first failure: it is injected (the data
  // plane sees it) but not yet repaired (the controller is stale).
  const std::size_t first_at = session.plan().events().front().at_event;
  auto step = session.advance(first_at);
  ASSERT_TRUE(step.ok());
  EXPECT_GE(session.injected(), 1u);
  EXPECT_EQ(session.repaired(), 0u);
  EXPECT_TRUE(session.state().any());

  auto rest = session.finish();
  ASSERT_TRUE(rest.ok()) << rest.error().to_string();
  EXPECT_TRUE(session.done());
  EXPECT_EQ(session.injected(), planned);
  EXPECT_EQ(session.repaired(), planned);
  // Every repair clears its data-plane fault: a finished session
  // leaves the network healthy.
  EXPECT_FALSE(session.state().any());

  // Replication repair ran after every topology change: any item that
  // still exists is back at the full factor.
  std::size_t lost = 0;
  for (const std::string& id : ids) {
    const auto held_by = holders(sys, id);
    if (held_by.empty()) {
      ++lost;
      continue;
    }
    EXPECT_EQ(held_by.size(), 2u) << id;
  }
  // k = 2 tolerates every single-failure window in this plan.
  EXPECT_EQ(lost, 0u);
}

// --- Bugfix regressions: hot-key cache vs. fault injection ---

// A cached answer must never serve data whose holder has crashed: the
// crash destroyed the copy, so serving from the cache masks the outage
// (and corrupts any recovery accounting built on real retrievals).
// Regression for the missing epoch bump on FaultSession::inject.
TEST(FaultSessionTest, CrashInjectionInvalidatesCachedAnswers) {
  GredSystem sys = make_system(4, 4);
  sys.network().enable_hot_key_cache();

  FaultPlanOptions opts;
  opts.event_count = 1;
  opts.schedule_length = 40;
  opts.stale_window = 5;
  opts.crash_weight = 1.0;
  opts.link_down_weight = 0.0;
  opts.flaky_weight = 0.0;
  opts.seed = 11;
  auto plan = FaultPlan::generate(sys.network().description(), opts);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().events().size(), 1u);
  ASSERT_EQ(plan.value().events()[0].kind, FaultKind::kSwitchCrash);
  const SwitchId doomed = plan.value().events()[0].subject;

  // An item homed at the doomed switch, warmed into the cache from a
  // healthy ingress.
  std::string victim;
  for (int i = 0; i < 400 && victim.empty(); ++i) {
    const std::string id = "cache-crash-" + std::to_string(i);
    const crypto::SpacePoint pos = crypto::DataKey(id).position();
    if (sys.controller().home_switch({pos.x, pos.y}) == doomed) victim = id;
  }
  ASSERT_FALSE(victim.empty());
  const SwitchId ingress = doomed == 0 ? 1 : 0;
  ASSERT_TRUE(sys.place(victim, "doomed-payload", ingress).ok());
  ASSERT_TRUE(sys.retrieve(victim, ingress).ok());  // learn-mode fill
  auto warm = sys.retrieve(victim, ingress);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm.value().served_from_cache);

  FaultSession session(sys, std::move(plan).value());
  auto step = session.advance(session.plan().events()[0].at_event);
  ASSERT_TRUE(step.ok());
  ASSERT_EQ(session.injected(), 1u);
  ASSERT_EQ(session.repaired(), 0u);

  // The holder is down and its data is gone: the retrieval must fail
  // through real routing, never answer from the pre-crash cache.
  auto during = sys.retrieve(victim, ingress);
  EXPECT_FALSE(during.ok() && during.value().served_from_cache)
      << "cached answer served for a crashed holder";
  EXPECT_FALSE(during.ok());

  ASSERT_TRUE(session.finish().ok());
}

// --- Bugfix regression: flaky-link drops vs. retries ---

// The drop hash used to depend only on (seed, link, key digest), so a
// retry of the same packet along the same link hashed to the identical
// drop decision forever — a 50% flaky link became a 100% black hole
// for exactly the keys it first dropped, regardless of backoff. The
// attempt ordinal now salts the hash.
TEST(RetryFallback, FlakyLinkEventuallySucceeds) {
  auto built = GredSystem::create(
      topology::uniform_edge_network(topology::line(2), 1));
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();

  // Items homed at switch 1, retrieved from ingress 0: every request
  // crosses the single (0, 1) link.
  std::vector<std::string> candidates;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "flaky-" + std::to_string(i);
    const crypto::SpacePoint pos = crypto::DataKey(id).position();
    if (sys.controller().home_switch({pos.x, pos.y}) == 1) {
      ASSERT_TRUE(sys.place(id, "v-" + id, 0).ok());
      candidates.push_back(id);
    }
  }
  ASSERT_FALSE(candidates.empty());

  sden::FaultState faults;
  faults.seed = 77;
  faults.set_link_drop(0, 1, 0.5);
  sys.network().set_fault_state(&faults);

  // A key whose first attempt deterministically drops.
  std::string victim;
  for (const std::string& id : candidates) {
    if (!sys.retrieve(id, 0).ok()) {
      victim = id;
      break;
    }
  }
  ASSERT_FALSE(victim.empty()) << "no key dropped on first attempt";

  RetryPolicy policy;
  policy.max_attempts = 20;
  auto out = sys.retrieve_with_fallback(victim, 0, policy);
  sys.network().set_fault_state(nullptr);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_TRUE(out.value().found)
      << "every retry hashed to the same drop decision";
  EXPECT_GT(out.value().attempts, 1u);
  EXPECT_TRUE(out.value().recovered);
  EXPECT_EQ(out.value().report.route.payload, "v-" + victim);
}

// --- Region-diverse replication ---

TEST(RegionDiverseReplication, HomesLandInDistinctRegions) {
  GredSystem sys = make_system(5, 5);
  ReplicationOptions opts;
  opts.factor = 2;
  opts.region_diverse = true;
  opts.region_grid = 2;
  ASSERT_TRUE(sys.enable_replication(opts).ok());
  ASSERT_GE(sys.controller().alive_region_count(), 2u);
  for (int i = 0; i < 40; ++i) {
    const crypto::DataKey key("rd-" + std::to_string(i));
    const auto homes = sys.controller().replica_homes(key);
    ASSERT_EQ(homes.size(), 2u);
    // Primary unchanged: element 0 is still the true nearest home.
    const crypto::SpacePoint pos = key.position();
    EXPECT_EQ(homes[0], sys.controller().home_switch({pos.x, pos.y}));
    EXPECT_NE(sys.controller().region_of_participant(homes[0]),
              sys.controller().region_of_participant(homes[1]))
        << "replicas co-located in one region for key " << i;
  }
}

TEST(RegionDiverseReplication, FallsBackToNearestOrderWhenOneRegion) {
  GredSystem sys = make_system(4, 4);
  ReplicationOptions opts;
  opts.factor = 3;
  opts.region_diverse = true;
  opts.region_grid = 1;  // a single region: diversity is impossible
  ASSERT_TRUE(sys.enable_replication(opts).ok());
  EXPECT_EQ(sys.controller().alive_region_count(), 1u);
  for (int i = 0; i < 20; ++i) {
    const crypto::DataKey key("fb-" + std::to_string(i));
    const crypto::SpacePoint pos = key.position();
    const auto homes = sys.controller().replica_homes(key);
    const auto plain =
        sys.controller().space().nearest_participants({pos.x, pos.y}, 3);
    EXPECT_EQ(homes, plain);
  }
}

TEST(RegionDiverseReplication, InvariantHoldsAcrossChurn) {
  GredSystem sys = make_system(5, 5);
  ReplicationOptions opts;
  opts.factor = 2;
  opts.region_diverse = true;
  opts.region_grid = 2;
  ASSERT_TRUE(sys.enable_replication(opts).ok());
  std::vector<std::string> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back("churn-rd-" + std::to_string(i));
    ASSERT_TRUE(
        sys.place(ids.back(), "v", static_cast<SwitchId>(i % 25)).ok());
  }
  ASSERT_TRUE(sys.remove_switch(7).ok());
  auto added = sys.add_switch({3, 12}, /*servers=*/2);
  ASSERT_TRUE(added.ok());
  // Every dynamics repair re-derived placements through the filtered
  // replica_homes, so the two holders of every item still sit in two
  // distinct regions.
  for (const std::string& id : ids) {
    const auto held_by = holders(sys, id);
    ASSERT_EQ(held_by.size(), 2u) << id;
    std::set<std::size_t> regions;
    for (const auto server : held_by) {
      const auto sw = sys.network().description().server(server).attached_to;
      regions.insert(sys.controller().region_of_participant(sw));
    }
    EXPECT_EQ(regions.size(), 2u) << id;
  }
}

// --- Disaster plans ---

fault::DisasterPlanOptions disaster_options() {
  fault::DisasterPlanOptions d;
  d.region_kills = 1;
  d.partitions = 0;
  d.region_shape = fault::RegionShape::kBox;
  d.box_grid = 2;
  d.schedule_length = 100;
  d.stale_window = 5;
  d.seed = 9;
  return d;
}

TEST(DisasterPlanTest, DeterministicForSeed) {
  GredSystem sys = make_system(5, 5);
  const auto& parts = sys.controller().space().participants();
  const auto& pos = sys.controller().space().positions();
  auto d = disaster_options();
  d.region_kills = 2;
  d.partitions = 2;
  auto a = FaultPlan::generate_disasters(sys.network().description(), parts,
                                         pos, d);
  auto b = FaultPlan::generate_disasters(sys.network().description(), parts,
                                         pos, d);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().events().size(), b.value().events().size());
  for (std::size_t i = 0; i < a.value().events().size(); ++i) {
    const auto& ea = a.value().events()[i];
    const auto& eb = b.value().events()[i];
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.at_event, eb.at_event);
    EXPECT_EQ(ea.repair_at, eb.repair_at);
    EXPECT_EQ(ea.members, eb.members);
    EXPECT_EQ(ea.cut_links, eb.cut_links);
  }
  // Repairs stay in event order even with mixed repair windows.
  std::size_t last_repair = 0;
  for (const auto& e : a.value().events()) {
    EXPECT_GE(e.at_event + 1, 1u);
    EXPECT_GE(e.repair_at, e.at_event);
    EXPECT_GE(e.repair_at, last_repair);
    last_repair = e.repair_at;
  }
}

TEST(DisasterPlanTest, RegionKillReplaysCleanAndRestoresFactor) {
  GredSystem sys = make_system(5, 5);
  ReplicationOptions ropts;
  ropts.factor = 2;
  ropts.region_diverse = true;
  ropts.region_grid = 2;
  ASSERT_TRUE(sys.enable_replication(ropts).ok());
  std::vector<std::string> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back("disaster-" + std::to_string(i));
    ASSERT_TRUE(
        sys.place(ids.back(), "v", static_cast<SwitchId>(i % 25)).ok());
  }

  auto plan = FaultPlan::generate_disasters(
      sys.network().description(), sys.controller().space().participants(),
      sys.controller().space().positions(), disaster_options());
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  ASSERT_EQ(plan.value().count(FaultKind::kRegionKill), 1u);
  const auto members = plan.value().events()[0].members;
  ASSERT_GE(members.size(), 2u) << "kill box too small to be correlated";

  FaultSession session(sys, std::move(plan).value());
  session.enable_recovery_tracking();
  auto done = session.finish();
  ASSERT_TRUE(done.ok()) << done.error().to_string();
  EXPECT_TRUE(session.done());
  EXPECT_FALSE(session.state().any());

  // The whole region is gone from the topology...
  for (const SwitchId m : members) {
    EXPECT_TRUE(sys.network().description().servers_at(m).empty());
  }
  // ...yet region-diverse k=2 kept a copy of everything outside the
  // box, and every repair restored the factor: zero items lost.
  EXPECT_EQ(session.items_lost(), 0u);
  for (const std::string& id : ids) {
    EXPECT_EQ(holders(sys, id).size(), 2u) << id;
  }
  // Items that only degraded (lost one of two copies) were restored.
  for (const auto& [id, rec] : session.recovery()) {
    EXPECT_FALSE(rec.degraded) << id;
  }
}

TEST(DisasterPlanTest, PartitionInjectsHealsAndDestroysNothing) {
  GredSystem sys = make_system(5, 5);
  ASSERT_TRUE(sys.enable_replication().ok());
  std::vector<std::string> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back("part-" + std::to_string(i));
    ASSERT_TRUE(
        sys.place(ids.back(), "v", static_cast<SwitchId>(i % 25)).ok());
  }
  const std::size_t switches_before = sys.network().switch_count();

  auto d = disaster_options();
  d.region_kills = 0;
  d.partitions = 1;
  d.partition_length = 10;
  auto plan = FaultPlan::generate_disasters(
      sys.network().description(), sys.controller().space().participants(),
      sys.controller().space().positions(), d);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().count(FaultKind::kPartition), 1u);
  const auto& event = plan.value().events()[0];
  ASSERT_FALSE(event.cut_links.empty());

  FaultSession session(sys, std::move(plan).value());
  session.enable_recovery_tracking();
  auto step = session.advance(event.at_event);
  ASSERT_TRUE(step.ok());
  EXPECT_TRUE(session.state().any());
  // Mid-partition retrievals may fail, but always classified.
  RetryPolicy policy;
  policy.max_attempts = 3;
  for (int i = 0; i < 10; ++i) {
    auto out = sys.retrieve_with_fallback(ids[static_cast<std::size_t>(i)],
                                          0, policy);
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    if (!out.value().found) {
      EXPECT_NE(out.value().final_status.error().code,
                ErrorCode::kInternal);
    }
  }

  auto done = session.finish();
  ASSERT_TRUE(done.ok()) << done.error().to_string();
  EXPECT_FALSE(session.state().any());
  // A partition severs links without destroying anything: the healed
  // network has the same topology and every copy of every item.
  EXPECT_EQ(sys.network().switch_count(), switches_before);
  EXPECT_EQ(session.items_wiped(), 0u);
  EXPECT_EQ(session.items_lost(), 0u);
  for (const std::string& id : ids) {
    EXPECT_EQ(holders(sys, id).size(), 2u) << id;
    auto out = sys.retrieve(id, 0);
    ASSERT_TRUE(out.ok()) << id;
    EXPECT_TRUE(out.value().route.found) << id;
  }
}

TEST(DisasterPlanTest, RecoveryTrackingExposesRpoWithoutReplication) {
  // Single-copy placement: a region kill genuinely destroys whatever
  // lived inside the box, and recovery accounting must say so.
  GredSystem sys = make_system(5, 5);
  std::vector<std::string> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back("rpo-" + std::to_string(i));
    ASSERT_TRUE(
        sys.place(ids.back(), "v", static_cast<SwitchId>(i % 25)).ok());
  }
  auto plan = FaultPlan::generate_disasters(
      sys.network().description(), sys.controller().space().participants(),
      sys.controller().space().positions(), disaster_options());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().count(FaultKind::kRegionKill), 1u);
  ASSERT_GE(plan.value().events()[0].members.size(), 2u);

  FaultSession session(sys, std::move(plan).value());
  session.enable_recovery_tracking();
  ASSERT_TRUE(session.finish().ok());

  EXPECT_GT(session.items_wiped(), 0u);
  EXPECT_GT(session.items_ever_unavailable(), 0u);
  EXPECT_EQ(session.items_lost(), session.items_ever_unavailable());
  // Survivors never went unavailable and still hold their one copy.
  std::size_t survivors = 0;
  for (const std::string& id : ids) {
    if (!holders(sys, id).empty()) ++survivors;
  }
  EXPECT_EQ(survivors + session.items_lost(), ids.size());
}

}  // namespace
}  // namespace gred
