// Points, predicates, convex hull, Voronoi clipping, and the
// C-regulation (CVT) refinement.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "geometry/convex_hull.hpp"
#include "geometry/cvt.hpp"
#include "geometry/point.hpp"
#include "geometry/predicates.hpp"
#include "geometry/voronoi.hpp"

namespace gred::geometry {
namespace {

// ---------- Point2D ----------

TEST(PointTest, Arithmetic) {
  const Point2D a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point2D{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point2D{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point2D{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Point2D{1.5, -0.5}));
}

TEST(PointTest, DotCrossNorm) {
  const Point2D a{3.0, 4.0}, b{1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 3.0);
  EXPECT_DOUBLE_EQ(cross(b, a), 4.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::sqrt(4.0 + 16.0));
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 20.0);
}

TEST(PointTest, LexOrderTieBreak) {
  EXPECT_TRUE(lex_less({0.0, 1.0}, {1.0, 0.0}));
  EXPECT_TRUE(lex_less({1.0, 0.0}, {1.0, 1.0}));
  EXPECT_FALSE(lex_less({1.0, 1.0}, {1.0, 1.0}));
}

TEST(PointTest, CloserToIsTotalOrderOnDistanceTies) {
  // Two candidates equidistant from the target: the lexicographically
  // smaller one wins (the paper's Voronoi-edge tie-break).
  const Point2D target{0.0, 0.0};
  const Point2D a{1.0, 0.0}, b{0.0, 1.0};  // both at distance 1
  EXPECT_TRUE(closer_to(target, b, a));    // b has smaller x
  EXPECT_FALSE(closer_to(target, a, b));
}

TEST(PointTest, CloserToPrefersSmallerDistance) {
  const Point2D target{0.0, 0.0};
  EXPECT_TRUE(closer_to(target, {0.5, 0.0}, {1.0, 0.0}));
  EXPECT_FALSE(closer_to(target, {1.0, 0.0}, {0.5, 0.0}));
}

// ---------- predicates ----------

TEST(PredicatesTest, Orientation) {
  EXPECT_EQ(orient2d({0, 0}, {1, 0}, {0, 1}), Orientation::kCounterClockwise);
  EXPECT_EQ(orient2d({0, 0}, {0, 1}, {1, 0}), Orientation::kClockwise);
  EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), Orientation::kCollinear);
}

TEST(PredicatesTest, SignedArea) {
  EXPECT_DOUBLE_EQ(signed_area2({0, 0}, {1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(signed_area2({0, 0}, {0, 1}, {1, 0}), -1.0);
}

TEST(PredicatesTest, InCircumcircle) {
  // Unit circle through (1,0), (0,1), (-1,0) [CCW].
  const Point2D a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.0, 0.0}));
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.0, -0.9}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {2.0, 0.0}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {0.0, -1.5}));
  // On the circle: not strictly inside.
  EXPECT_FALSE(in_circumcircle(a, b, c, {0.0, -1.0}));
}

TEST(PredicatesTest, Circumcenter) {
  const Point2D cc = circumcenter({1, 0}, {0, 1}, {-1, 0});
  EXPECT_NEAR(cc.x, 0.0, 1e-12);
  EXPECT_NEAR(cc.y, 0.0, 1e-12);
  // Equidistance property on a scalene triangle.
  const Point2D a{0.3, 1.7}, b{-2.0, 0.4}, c{1.1, -0.8};
  const Point2D o = circumcenter(a, b, c);
  EXPECT_NEAR(distance(o, a), distance(o, b), 1e-9);
  EXPECT_NEAR(distance(o, b), distance(o, c), 1e-9);
}

TEST(PredicatesTest, PointInTriangle) {
  const Point2D a{0, 0}, b{2, 0}, c{0, 2};
  EXPECT_TRUE(point_in_triangle(a, b, c, {0.5, 0.5}));
  EXPECT_TRUE(point_in_triangle(a, b, c, {1.0, 0.0}));  // boundary
  EXPECT_TRUE(point_in_triangle(a, b, c, {0.0, 0.0}));  // vertex
  EXPECT_FALSE(point_in_triangle(a, b, c, {2.0, 2.0}));
  EXPECT_FALSE(point_in_triangle(a, b, c, {-0.1, 0.5}));
}

// ---------- convex hull ----------

TEST(ConvexHullTest, Square) {
  const auto hull = convex_hull(
      {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.7}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 1.0, 1e-12);
}

TEST(ConvexHullTest, CcwOrientation) {
  const auto hull = convex_hull({{0, 0}, {2, 0}, {1, 2}, {1, 0.5}});
  ASSERT_EQ(hull.size(), 3u);
  EXPECT_GT(polygon_area(hull), 0.0);  // CCW => positive area
}

TEST(ConvexHullTest, CollinearCollapsesToExtremes) {
  const auto hull = convex_hull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHullTest, DuplicatesIgnored) {
  const auto hull = convex_hull({{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, SmallInputs) {
  EXPECT_EQ(convex_hull({}).size(), 0u);
  EXPECT_EQ(convex_hull({{1, 2}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 2}, {3, 4}}).size(), 2u);
}

TEST(ConvexHullTest, AllPointsInsideHull) {
  Rng rng(55);
  std::vector<Point2D> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  const auto hull = convex_hull(pts);
  // Every input point is inside or on the hull: no right turn when
  // walking hull edges past the point.
  for (const Point2D& p : pts) {
    for (std::size_t i = 0; i < hull.size(); ++i) {
      const Point2D& a = hull[i];
      const Point2D& b = hull[(i + 1) % hull.size()];
      EXPECT_GE(signed_area2(a, b, p), -1e-9);
    }
  }
}

TEST(PolygonTest, AreaAndCentroidOfSquare) {
  const std::vector<Point2D> sq{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_DOUBLE_EQ(polygon_area(sq), 4.0);
  const Point2D c = polygon_centroid(sq);
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(PolygonTest, CentroidOfTriangle) {
  const std::vector<Point2D> tri{{0, 0}, {3, 0}, {0, 3}};
  const Point2D c = polygon_centroid(tri);
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

// ---------- Voronoi ----------

TEST(VoronoiTest, NearestSiteBasic) {
  const std::vector<Point2D> sites{{0.25, 0.5}, {0.75, 0.5}};
  EXPECT_EQ(nearest_site(sites, {0.1, 0.5}), 0u);
  EXPECT_EQ(nearest_site(sites, {0.9, 0.5}), 1u);
}

TEST(VoronoiTest, NearestSiteTieBreakByRank) {
  // Equidistant: the site with smaller (x, y) wins.
  const std::vector<Point2D> sites{{0.75, 0.5}, {0.25, 0.5}};
  EXPECT_EQ(nearest_site(sites, {0.5, 0.5}), 1u);  // (0.25, .5) < (0.75, .5)
}

TEST(VoronoiTest, TwoSitesSplitSquareInHalf) {
  const Rect domain;
  const std::vector<Point2D> sites{{0.25, 0.5}, {0.75, 0.5}};
  const auto areas = voronoi_cell_areas(sites, domain);
  ASSERT_EQ(areas.size(), 2u);
  EXPECT_NEAR(areas[0], 0.5, 1e-9);
  EXPECT_NEAR(areas[1], 0.5, 1e-9);
}

TEST(VoronoiTest, AreasSumToDomainArea) {
  Rng rng(66);
  std::vector<Point2D> sites;
  for (int i = 0; i < 25; ++i) {
    sites.push_back({rng.next_double(), rng.next_double()});
  }
  const Rect domain;
  const auto areas = voronoi_cell_areas(sites, domain);
  const double total = std::accumulate(areas.begin(), areas.end(), 0.0);
  EXPECT_NEAR(total, domain.area(), 1e-6);
  for (double a : areas) EXPECT_GT(a, 0.0);
}

TEST(VoronoiTest, CellContainsItsSite) {
  Rng rng(67);
  std::vector<Point2D> sites;
  for (int i = 0; i < 12; ++i) {
    sites.push_back({rng.next_double(), rng.next_double()});
  }
  const Rect domain;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto cell = voronoi_cell(sites, i, domain);
    ASSERT_GE(cell.size(), 3u);
    // The site is inside its own (convex) cell.
    for (std::size_t k = 0; k < cell.size(); ++k) {
      const Point2D& a = cell[k];
      const Point2D& b = cell[(k + 1) % cell.size()];
      EXPECT_GE(signed_area2(a, b, sites[i]), -1e-9);
    }
  }
}

TEST(VoronoiTest, CellMatchesNearestSiteSampling) {
  Rng rng(68);
  std::vector<Point2D> sites;
  for (int i = 0; i < 8; ++i) {
    sites.push_back({rng.next_double(), rng.next_double()});
  }
  const Rect domain;
  const auto areas = voronoi_cell_areas(sites, domain);
  // Monte-Carlo estimate must agree with exact clipping.
  std::vector<double> mc(sites.size(), 0.0);
  const int samples = 200000;
  for (int s = 0; s < samples; ++s) {
    const Point2D p{rng.next_double(), rng.next_double()};
    mc[nearest_site(sites, p)] += 1.0;
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_NEAR(mc[i] / samples, areas[i], 0.01) << "cell " << i;
  }
}

TEST(RectTest, ContainsAndClamp) {
  const Rect r{0.0, 0.0, 1.0, 2.0};
  EXPECT_TRUE(r.contains({0.5, 1.5}));
  EXPECT_FALSE(r.contains({1.5, 0.5}));
  EXPECT_EQ(r.clamp({2.0, -1.0}), (Point2D{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(r.area(), 2.0);
}

// ---------- CVT / C-regulation ----------

TEST(CvtTest, EnergyDecreases) {
  Rng rng(70);
  std::vector<Point2D> sites;
  for (int i = 0; i < 10; ++i) {
    // Deliberately clustered start: lots of room to improve.
    sites.push_back({0.1 + 0.05 * rng.next_double(),
                     0.1 + 0.05 * rng.next_double()});
  }
  CvtOptions opt;
  opt.samples_per_iteration = 2000;
  opt.max_iterations = 40;
  const CvtResult r = c_regulation(sites, opt, rng);
  ASSERT_EQ(r.energy_history.size(), 40u);
  EXPECT_LT(r.energy_history.back(), r.energy_history.front() * 0.5);
}

TEST(CvtTest, EqualizesVoronoiCellAreas) {
  Rng rng(71);
  std::vector<Point2D> sites;
  for (int i = 0; i < 16; ++i) {
    sites.push_back({rng.next_double() * 0.3, rng.next_double() * 0.3});
  }
  const Rect domain;
  const double before_cov = [&] {
    const auto areas = voronoi_cell_areas(sites, domain);
    double mean = 0, var = 0;
    for (double a : areas) mean += a;
    mean /= areas.size();
    for (double a : areas) var += (a - mean) * (a - mean);
    return std::sqrt(var / areas.size()) / mean;
  }();

  CvtOptions opt;
  opt.samples_per_iteration = 4000;
  opt.max_iterations = 60;
  const CvtResult r = c_regulation(sites, opt, rng);

  const auto areas = voronoi_cell_areas(r.sites, domain);
  double mean = 0, var = 0;
  for (double a : areas) mean += a;
  mean /= areas.size();
  for (double a : areas) var += (a - mean) * (a - mean);
  const double after_cov = std::sqrt(var / areas.size()) / mean;

  EXPECT_LT(after_cov, before_cov * 0.5);
  EXPECT_LT(after_cov, 0.35);
}

TEST(CvtTest, SitesStayInDomain) {
  Rng rng(72);
  std::vector<Point2D> sites{{0.5, 0.5}, {0.51, 0.5}, {0.5, 0.51}};
  CvtOptions opt;
  opt.max_iterations = 30;
  const CvtResult r = c_regulation(sites, opt, rng);
  for (const Point2D& s : r.sites) {
    EXPECT_TRUE(opt.domain.contains(s));
  }
}

TEST(CvtTest, ClampsSitesOutsideDomain) {
  Rng rng(73);
  std::vector<Point2D> sites{{-1.0, 2.0}, {0.5, 0.5}};
  CvtOptions opt;
  opt.max_iterations = 1;
  const CvtResult r = c_regulation(sites, opt, rng);
  for (const Point2D& s : r.sites) {
    EXPECT_TRUE(opt.domain.contains(s));
  }
}

TEST(CvtTest, ZeroIterationsIsIdentity) {
  Rng rng(74);
  const std::vector<Point2D> sites{{0.2, 0.3}, {0.8, 0.7}};
  CvtOptions opt;
  opt.max_iterations = 0;
  const CvtResult r = c_regulation(sites, opt, rng);
  EXPECT_EQ(r.sites, sites);
  EXPECT_EQ(r.iterations_run, 0u);
}

TEST(CvtTest, EnergyThresholdStopsEarly) {
  Rng rng(75);
  std::vector<Point2D> sites;
  for (int i = 0; i < 9; ++i) {
    sites.push_back({0.1 + 0.1 * (i % 3), 0.1 + 0.1 * (i / 3)});
  }
  CvtOptions opt;
  opt.max_iterations = 200;
  opt.energy_threshold = 0.05;  // loose: reached quickly
  const CvtResult r = c_regulation(sites, opt, rng);
  EXPECT_LT(r.iterations_run, 200u);
  EXPECT_LT(r.energy_history.back(), 0.05);
}

TEST(CvtTest, EmptySitesHandled) {
  Rng rng(76);
  CvtOptions opt;
  const CvtResult r = c_regulation({}, opt, rng);
  EXPECT_TRUE(r.sites.empty());
}

TEST(CvtTest, SingleSiteMovesTowardDomainCenter) {
  Rng rng(77);
  std::vector<Point2D> sites{{0.05, 0.05}};
  CvtOptions opt;
  opt.samples_per_iteration = 5000;
  opt.max_iterations = 10;
  const CvtResult r = c_regulation(sites, opt, rng);
  EXPECT_NEAR(r.sites[0].x, 0.5, 0.05);
  EXPECT_NEAR(r.sites[0].y, 0.5, 0.05);
}

TEST(CvtTest, DensityBiasesSites) {
  // With density concentrated on the left half, sites should end up
  // mostly on the left.
  Rng rng(78);
  std::vector<Point2D> sites;
  for (int i = 0; i < 8; ++i) {
    sites.push_back({rng.next_double(), rng.next_double()});
  }
  CvtOptions opt;
  opt.samples_per_iteration = 3000;
  opt.max_iterations = 40;
  opt.density = [](const Point2D& p) { return p.x < 0.5 ? 1.0 : 0.02; };
  opt.density_bound = 1.0;
  const CvtResult r = c_regulation(sites, opt, rng);
  int left = 0;
  for (const Point2D& s : r.sites) left += (s.x < 0.5);
  EXPECT_GE(left, 6);
}

TEST(CvtEnergyTest, UniformGridBeatsClumpedSites) {
  Rng rng(79);
  std::vector<Point2D> grid, clump;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      grid.push_back({(i + 0.5) / 3.0, (j + 0.5) / 3.0});
      clump.push_back({0.5 + 0.01 * i, 0.5 + 0.01 * j});
    }
  }
  CvtOptions opt;  // uniform density over the unit square
  Rng r1(1), r2(1);
  const double e_grid = estimate_cvt_energy(grid, opt, 20000, r1);
  const double e_clump = estimate_cvt_energy(clump, opt, 20000, r2);
  EXPECT_LT(e_grid, e_clump);
}

}  // namespace
}  // namespace gred::geometry
