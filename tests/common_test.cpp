// Unit tests for the common substrate: Result/Status, Rng, statistics,
// Table, string utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace gred {
namespace {

// ---------- Result / Status ----------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Error(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ErrorCodeAndMessageConstructor) {
  Result<std::string> r(ErrorCode::kInvalidArgument, "bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().to_string(), "invalid_argument: bad");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(StatusTest, ErrorState) {
  Status s(ErrorCode::kUnavailable, "down");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kUnavailable);
}

TEST(ErrorCodeTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (ErrorCode c :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kOutOfRange, ErrorCode::kFailedPrecondition,
        ErrorCode::kUnavailable, ErrorCode::kInternal}) {
    names.insert(to_string(c));
  }
  EXPECT_EQ(names.size(), 6u);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(9);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(p.size(), 50u);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(10);
  std::vector<int> v{1, 2, 2, 3, 3, 3};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitStreamsAreIndependentButDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ca.next_u64(), cb.next_u64());
  }
}

TEST(RngTest, UniformityChiSquare) {
  // 16 buckets, 16000 draws: chi^2 with 15 dof, 99.9th pct ~ 37.7.
  Rng rng(77);
  std::vector<int> buckets(16, 0);
  const int draws = 16000;
  for (int i = 0; i < draws; ++i) {
    ++buckets[rng.next_below(16)];
  }
  const double expected = draws / 16.0;
  double chi2 = 0.0;
  for (int c : buckets) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

// ---------- Stats ----------

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats whole, a, b;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian() * 3.0 + 1.0;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, CiShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(8);
  for (int i = 0; i < 100; ++i) small.add(rng.next_gaussian());
  for (int i = 0; i < 10000; ++i) large.add(rng.next_gaussian());
  EXPECT_GT(small.ci_halfwidth(0.90), large.ci_halfwidth(0.90));
}

TEST(RunningStatsTest, CiLevelOrdering) {
  RunningStats s;
  Rng rng(8);
  for (int i = 0; i < 100; ++i) s.add(rng.next_gaussian());
  EXPECT_LT(s.ci_halfwidth(0.90), s.ci_halfwidth(0.95));
  EXPECT_LT(s.ci_halfwidth(0.95), s.ci_halfwidth(0.99));
}

TEST(PercentileTest, Interpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 2.5);
}

TEST(PercentileTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.99), 7.0);
}

TEST(SummaryTest, Basics) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const Summary s = summarize(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_GT(s.ci90, 0.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(LoadMetricsTest, MaxOverAvg) {
  EXPECT_DOUBLE_EQ(max_over_avg({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(max_over_avg({10, 0, 0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(max_over_avg({}), 0.0);
  EXPECT_DOUBLE_EQ(max_over_avg({0, 0}), 0.0);
}

TEST(LoadMetricsTest, JainFairness) {
  EXPECT_DOUBLE_EQ(jain_fairness({3, 3, 3}), 1.0);
  EXPECT_NEAR(jain_fairness({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
}

TEST(LoadMetricsTest, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({4, 4, 4}), 0.0);
  EXPECT_GT(coefficient_of_variation({1, 100}), 0.5);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(9), 10.0);
  EXPECT_FALSE(h.to_string().empty());
}

// ---------- Table ----------

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("x"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "two,with comma"});
  t.add_row({"quote\"y", "plain"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv,
            "a,b\n"
            "1,\"two,with comma\"\n"
            "\"quote\"\"y\",plain\n");
}

TEST(TableTest, CsvPadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.to_csv(), "a,b,c\nx,,\n");
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

// ---------- strings ----------

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"solo"}, "-"), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace gred
