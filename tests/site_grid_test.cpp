#include "geometry/site_grid.hpp"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "geometry/cvt.hpp"
#include "geometry/point.hpp"
#include "geometry/voronoi.hpp"

namespace gred::geometry {
namespace {

TEST(SiteGridTest, EmptyGridReturnsNoSite) {
  SiteGrid grid;
  EXPECT_EQ(grid.nearest({0.5, 0.5}), kNoSite);
  SiteGrid explicit_empty({}, Rect{});
  EXPECT_EQ(explicit_empty.nearest({0.5, 0.5}), kNoSite);
}

TEST(SiteGridTest, SingleSiteAlwaysWins) {
  SiteGrid grid({{0.25, 0.75}}, Rect{});
  EXPECT_EQ(grid.nearest({0.0, 0.0}), 0u);
  EXPECT_EQ(grid.nearest({0.25, 0.75}), 0u);
  EXPECT_EQ(grid.nearest({42.0, -17.0}), 0u);
}

TEST(SiteGridTest, AgreesWithBruteForceOnRandomQueries) {
  Rng rng(9001);
  std::vector<Point2D> sites;
  for (int i = 0; i < 300; ++i) {
    sites.push_back({rng.next_double(), rng.next_double()});
  }
  const SiteGrid grid(sites, Rect{});
  for (int q = 0; q < 1000; ++q) {
    // Mostly in-domain queries, some well outside the indexed box.
    const double span = (q % 5 == 0) ? 3.0 : 1.0;
    const double off = (q % 5 == 0) ? -1.0 : 0.0;
    const Point2D p{off + span * rng.next_double(),
                    off + span * rng.next_double()};
    EXPECT_EQ(grid.nearest(p), nearest_site(sites, p))
        << "query (" << p.x << ", " << p.y << ")";
  }
}

TEST(SiteGridTest, AgreesWithBruteForceOnBoundaryAndTiePoints) {
  // Regular lattice: queries on cell corners and midpoints are exactly
  // equidistant from several sites, exercising the tie-break order.
  std::vector<Point2D> sites;
  for (int i = 0; i <= 4; ++i) {
    for (int j = 0; j <= 4; ++j) {
      sites.push_back({i / 4.0, j / 4.0});
    }
  }
  const SiteGrid grid(sites, Rect{});
  std::vector<Point2D> queries;
  for (int i = 0; i <= 8; ++i) {
    for (int j = 0; j <= 8; ++j) {
      queries.push_back({i / 8.0, j / 8.0});  // corners and midpoints
    }
  }
  queries.push_back({0.0, 0.0});
  queries.push_back({1.0, 1.0});
  queries.push_back({-0.125, 0.5});
  queries.push_back({1.125, 0.5});
  for (const Point2D& p : queries) {
    EXPECT_EQ(grid.nearest(p), nearest_site(sites, p))
        << "query (" << p.x << ", " << p.y << ")";
  }
}

TEST(SiteGridTest, DuplicateSitesResolveToLowestIndex) {
  const std::vector<Point2D> sites = {
      {0.5, 0.5}, {0.2, 0.2}, {0.5, 0.5}, {0.5, 0.5}};
  const SiteGrid grid(sites, Rect{});
  EXPECT_EQ(grid.nearest({0.5, 0.5}), 0u);
  EXPECT_EQ(grid.nearest({0.6, 0.6}), 0u);
  EXPECT_EQ(nearest_site(sites, {0.5, 0.5}), 0u);
}

TEST(CvtDeterminismTest, ParallelPoolReproducesSerialExactly) {
  Rng site_rng(31);
  std::vector<Point2D> sites;
  for (int i = 0; i < 60; ++i) {
    sites.push_back({site_rng.next_double(), site_rng.next_double()});
  }

  ThreadPool serial(1);
  ThreadPool parallel(4);
  CvtOptions opt;
  opt.samples_per_iteration = 2000;
  opt.max_iterations = 8;

  opt.pool = &serial;
  Rng r1(77);
  const CvtResult a = c_regulation(sites, opt, r1);

  opt.pool = &parallel;
  Rng r2(77);
  const CvtResult b = c_regulation(sites, opt, r2);

  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].x, b.sites[i].x) << "site " << i;
    EXPECT_EQ(a.sites[i].y, b.sites[i].y) << "site " << i;
  }
  EXPECT_EQ(a.energy_history, b.energy_history);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
}

TEST(CvtDeterminismTest, EnergyEstimateMatchesAcrossThreadCounts) {
  Rng site_rng(5);
  std::vector<Point2D> sites;
  for (int i = 0; i < 40; ++i) {
    sites.push_back({site_rng.next_double(), site_rng.next_double()});
  }
  ThreadPool serial(1);
  ThreadPool parallel(4);
  CvtOptions opt;
  opt.pool = &serial;
  Rng r1(123);
  const double e1 = estimate_cvt_energy(sites, opt, 10000, r1);
  opt.pool = &parallel;
  Rng r2(123);
  const double e2 = estimate_cvt_energy(sites, opt, 10000, r2);
  EXPECT_EQ(e1, e2);
}

TEST(CvtDeterminismTest, EnergyEstimateHonorsDensity) {
  // One site at the far left: with all the sample mass concentrated on
  // the left edge, the mean squared distance must come out well below
  // the uniform-density estimate.
  const std::vector<Point2D> sites = {{0.05, 0.5}};
  CvtOptions uniform;
  CvtOptions left_heavy;
  left_heavy.density = [](const Point2D& p) { return p.x < 0.1 ? 1.0 : 0.0; };
  left_heavy.density_bound = 1.0;

  Rng r1(9);
  const double uniform_energy = estimate_cvt_energy(sites, uniform, 20000, r1);
  Rng r2(9);
  const double left_energy = estimate_cvt_energy(sites, left_heavy, 20000, r2);
  EXPECT_LT(left_energy, uniform_energy * 0.5);
}

}  // namespace
}  // namespace gred::geometry
