// Chaos soak: a seeded FaultPlan replayed against a live GRED system
// with k = 2 replication, interleaved with topology churn and
// concurrent fallback retrievals. The end-to-end statement of the
// fault-tolerance layer:
//   - no item with a surviving copy is ever lost,
//   - every repair brings surviving items straight back to the
//     replication factor,
//   - every retrieval either succeeds or fails with a classified,
//     retry-safe status — never kInternal.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/system.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_session.hpp"
#include "obs/obs.hpp"
#include "sden/hot_key_cache.hpp"
#include "topology/presets.hpp"

namespace gred {
namespace {

using core::GredSystem;
using core::RetryPolicy;
using topology::SwitchId;

class ChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_enabled(true); }
  void TearDown() override { obs::set_enabled(false); }
};

std::size_t holder_count(const GredSystem& sys, const std::string& id) {
  std::size_t n = 0;
  const auto& net = sys.network();
  for (topology::ServerId s = 0; s < net.server_count(); ++s) {
    if (net.server(s).contains(id)) ++n;
  }
  return n;
}

TEST_F(ChaosSoakTest, SeededFaultsChurnAndConcurrentRetrievals) {
  auto built = GredSystem::create(
      topology::uniform_edge_network(topology::grid(4, 5), 2));
  ASSERT_TRUE(built.ok()) << built.error().to_string();
  GredSystem sys = std::move(built).value();
  ASSERT_TRUE(sys.enable_replication().ok());
  // The hot-key cache stays enabled through the whole chaos run. The
  // concurrent fallback batches bypass it by design (only plain
  // retrieve consults the cache, and learn-mode fills are
  // single-threaded); the differential checks below pin that every
  // fault/repair/churn event invalidated conservatively.
  sden::HotKeyCache& cache = sys.network().enable_hot_key_cache();

  Rng rng(0xFA017u);
  std::vector<std::string> live;
  int next_id = 0;
  auto alive_ingress = [&](const sden::FaultState& faults) -> SwitchId {
    const auto& parts = sys.controller().space().participants();
    for (;;) {
      const SwitchId s = parts[rng.next_below(parts.size())];
      if (!faults.switch_is_down(s)) return s;
    }
  };
  for (int i = 0; i < 120; ++i) {
    const std::string id = "chaos-" + std::to_string(next_id++);
    ASSERT_TRUE(sys.place(id, "payload-" + id, alive_ingress({})).ok());
    live.push_back(id);
  }

  fault::FaultPlanOptions fopt;
  fopt.event_count = 10;
  fopt.schedule_length = 240;
  fopt.stale_window = 6;
  fopt.seed = 20260805;
  auto plan = fault::FaultPlan::generate(sys.network().description(), fopt);
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  ASSERT_GE(plan.value().events().size(), 8u);

  // Every instant at which the session state changes, in order.
  std::set<std::size_t> deadlines;
  for (const auto& e : plan.value().events()) {
    deadlines.insert(e.at_event);
    deadlines.insert(e.repair_at);
  }

  fault::FaultSession session(sys, std::move(plan).value());

  RetryPolicy policy;
  policy.max_attempts = 6;

  struct SlotResult {
    bool ok = false;
    bool found = false;
    bool classified = false;
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
  };

  std::size_t retrievals = 0;
  std::size_t found_count = 0;
  std::size_t step = 0;
  for (const std::size_t t : deadlines) {
    auto advanced = session.advance(t);
    ASSERT_TRUE(advanced.ok())
        << "t=" << t << ": " << advanced.error().to_string();

    // Factor invariant: a repair leaves every surviving item at the
    // full replication factor (injections don't destroy data; only a
    // crash repair wipes, and restore_replication runs right after).
    if (session.repaired() > 0 &&
        session.repaired() == session.injected()) {
      for (const std::string& id : live) {
        const std::size_t held = holder_count(sys, id);
        if (held > 0) {
          EXPECT_EQ(held, 2u) << "t=" << t << " item " << id;
        }
      }
    }

    // Churn riding along with the faults.
    if (step % 3 == 1) {
      (void)sys.add_link(alive_ingress(session.state()),
                         alive_ingress(session.state()));
    }
    if (step == 4) {
      const SwitchId u = alive_ingress(session.state());
      const SwitchId v = alive_ingress(session.state());
      (void)sys.add_switch({u, v}, /*servers=*/2);
    }
    // New placements during fault windows may fail with a classified
    // routing error; the item is live only once fully placed.
    const std::string id = "chaos-" + std::to_string(next_id++);
    auto placed =
        sys.place(id, "payload-" + id, alive_ingress(session.state()));
    if (placed.ok()) {
      live.push_back(id);
    } else {
      EXPECT_NE(placed.error().code, ErrorCode::kInternal)
          << placed.error().to_string();
    }

    // A concurrent batch of fallback retrievals of random live items
    // from healthy ingress switches.
    constexpr std::size_t kBatch = 16;
    std::vector<std::string> ids(kBatch);
    std::vector<SwitchId> ingresses(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      ids[i] = live[rng.next_below(live.size())];
      ingresses[i] = alive_ingress(session.state());
    }
    std::vector<SlotResult> results(kBatch);
    global_pool().parallel_for(0, kBatch, 4, [&](std::size_t lo,
                                                 std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        auto out = sys.retrieve_with_fallback(ids[i], ingresses[i], policy);
        SlotResult& slot = results[i];
        slot.ok = out.ok();
        if (!out.ok()) {
          slot.code = out.error().code;
          slot.message = out.error().message;
          continue;
        }
        slot.found = out.value().found;
        if (!out.value().found) {
          slot.classified = !out.value().final_status.ok();
          slot.code = out.value().final_status.error().code;
          slot.message = out.value().final_status.error().message;
        }
      }
    });
    for (std::size_t i = 0; i < kBatch; ++i) {
      ++retrievals;
      ASSERT_TRUE(results[i].ok)
          << "t=" << t << " " << ids[i] << ": unclassified error "
          << results[i].message;
      if (results[i].found) {
        ++found_count;
      } else {
        // Exhausted retries must carry a classified status.
        EXPECT_TRUE(results[i].classified) << "t=" << t << " " << ids[i];
        EXPECT_NE(results[i].code, ErrorCode::kInternal)
            << "t=" << t << " " << ids[i] << ": " << results[i].message;
      }
    }

    // Healthy interludes: cached and uncached retrievals must agree
    // exactly. (Hard faults bump the cache epoch at inject time, but
    // during a flaky-link window a surviving cache hit can still
    // legitimately answer while routing happens to drop, so the
    // comparison is only meaningful when no fault is installed.)
    if (!session.state().any()) {
      for (int i = 0; i < 4; ++i) {
        const std::string& id = live[rng.next_below(live.size())];
        const SwitchId ingress = alive_ingress(session.state());
        auto warm = sys.retrieve(id, ingress);  // learn-mode fill
        auto cached = sys.retrieve(id, ingress);
        cache.set_enabled(false);
        auto plain = sys.retrieve(id, ingress);
        cache.set_enabled(true);
        ASSERT_TRUE(warm.ok() && cached.ok() && plain.ok())
            << "t=" << t << " " << id;
        EXPECT_EQ(cached.value().route.found, plain.value().route.found)
            << "t=" << t << " " << id;
        EXPECT_EQ(cached.value().route.payload,
                  plain.value().route.payload)
            << "t=" << t << " " << id;
      }
    }
    ++step;
  }

  auto finished = session.finish();
  ASSERT_TRUE(finished.ok()) << finished.error().to_string();
  EXPECT_TRUE(session.done());
  EXPECT_FALSE(session.state().any());

  // k = 2 and one wipe per repair: no item can lose both copies, so
  // nothing is ever lost and the factor is fully restored.
  for (const std::string& id : live) {
    EXPECT_EQ(holder_count(sys, id), 2u) << "lost " << id;
  }

  // The healed network is structurally sound and fully serving.
  const auto graph_report =
      check::validate_graph(sys.network().description().switches());
  EXPECT_TRUE(graph_report.ok()) << graph_report.to_string();
  const auto table_report = check::validate_flow_tables(
      sys.network(), sys.controller().space().participants(),
      sys.controller().space().positions());
  EXPECT_TRUE(table_report.ok()) << table_report.to_string();
  for (const std::string& id : live) {
    auto out = sys.retrieve_with_fallback(id, alive_ingress({}), policy);
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_TRUE(out.value().found) << id;
  }

  // Post-heal differential sweep: after every crash wipe, replication
  // repair, and topology change, a cached answer must be bit-identical
  // to an uncached one for every surviving item.
  std::size_t cache_served = 0;
  for (const std::string& id : live) {
    const SwitchId ingress = alive_ingress({});
    auto warm = sys.retrieve(id, ingress);
    auto cached = sys.retrieve(id, ingress);
    cache.set_enabled(false);
    auto plain = sys.retrieve(id, ingress);
    cache.set_enabled(true);
    ASSERT_TRUE(warm.ok() && cached.ok() && plain.ok()) << id;
    cache_served += cached.value().served_from_cache ? 1 : 0;
    EXPECT_EQ(cached.value().route.found, plain.value().route.found) << id;
    EXPECT_EQ(cached.value().route.payload, plain.value().route.payload)
        << id;
    EXPECT_EQ(cached.value().route.responder,
              plain.value().route.responder)
        << id;
  }
  EXPECT_GT(cache_served, 0u);
  EXPECT_GT(cache.hits(), 0u);

  // Under faults, the vast majority of mid-chaos retrievals still
  // succeed via fallback (the exact count is seed-deterministic).
  EXPECT_GT(retrievals, 0u);
  EXPECT_GE(static_cast<double>(found_count),
            0.95 * static_cast<double>(retrievals))
      << found_count << "/" << retrievals;
}

}  // namespace
}  // namespace gred
