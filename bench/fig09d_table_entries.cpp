// Fig. 9(d): average number of forwarding table entries per switch vs
// network size, with 90% CIs (Section VII-D). Expectation: a small
// count growing only modestly with the network size — independent of
// the number of flows. For perspective we also print Chord's routing
// state per server (distinct finger entries).
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 9(d)", "forwarding table entries per switch vs network size",
      "few entries, modest growth with network size");

  Table table({"switches", "GRED entries/switch (90% CI)",
               "GRED min..max", "Chord fingers/server (mean)"});
  const std::vector<std::size_t> sizes = {20, 50, 100, 150, 200};
  std::vector<std::vector<std::string>> rows(sizes.size());
  bench::parallel_trials(sizes.size(), [&](std::size_t k) {
    const std::size_t n = sizes[k];
    const topology::EdgeNetwork net =
        bench::make_waxman_network(n, 10, 3, 4000 + n);
    auto sys = core::GredSystem::create(net, bench::gred_options(50));
    auto ring = chord::ChordRing::build(net);
    if (!sys.ok() || !ring.ok()) std::abort();

    std::vector<double> counts;
    for (std::size_t c : sys.value().network().table_entry_counts()) {
      counts.push_back(static_cast<double>(c));
    }
    const Summary s = summarize(counts);

    double chord_total = 0;
    for (topology::ServerId srv = 0; srv < net.server_count(); ++srv) {
      chord_total += static_cast<double>(ring.value().finger_entries(srv));
    }
    const double chord_mean =
        chord_total / static_cast<double>(net.server_count());

    rows[k] = {std::to_string(n), bench::mean_ci_cell(s, 2),
               Table::fmt(s.min, 0) + ".." + Table::fmt(s.max, 0),
               Table::fmt(chord_mean, 2)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
