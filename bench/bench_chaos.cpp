// Chaos bench: the fault-tolerance layer under a seeded crash plan.
// Builds a Waxman edge network with k = 2 replication, kills ~5% of
// the switches mid-run (stale-table windows included), and replays
// fallback retrievals throughout. Reports the survivor success rate,
// mean attempts/fallbacks per retrieval, and the stretch degradation
// of recovered retrievals versus the healthy baseline, plus the
// faults-disabled fast-path throughput — which must stay
// allocation-free: the fault hook costs one predicted branch.
//
// Emits BENCH_chaos.json:
//
//   switches / items / events_planned / switches_killed / items_wiped
//   nofault_pkts_per_sec        fast path, no fault state installed
//   nofault_allocs_per_packet   asserted == 0
//   chaos_retrievals            fallback retrievals during the fault run
//   chaos_success_rate          asserted >= 0.99 (k = 2 survivors)
//   chaos_mean_attempts         route attempts per retrieval
//   chaos_mean_fallbacks        replica re-targets per retrieval
//   chaos_recovered             retrievals that needed a retry to succeed
//   healthy_mean_stretch / chaos_mean_stretch / stretch_degradation_pct
//   post_chaos_pkts_per_sec     fast path after every repair, empty
//   post_chaos_allocs_per_packet  fault state installed (asserted == 0)
//
// `--smoke` shrinks the topology and round counts for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/data_key.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_session.hpp"
#include "sden/network.hpp"

using namespace gred;

// Global allocation counter for the zero-steady-state-alloc assertion.
static std::size_t g_allocs = 0;
void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_chaos: check failed: %s\n", what);
    std::abort();
  }
}

/// Steady-state fast-path throughput over the prepared packets, with
/// the allocation counter checked across the timed region.
double routed_pps(sden::SdenNetwork& network,
                  const std::vector<sden::Packet>& pkts,
                  const std::vector<sden::SwitchId>& ingresses,
                  std::size_t rounds, double* allocs_per_packet) {
  sden::RouteResult scratch;
  sden::Packet pkt_scratch;
  // Warm-up: sizes scratch capacity so the timed region is steady.
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    pkt_scratch = pkts[i];
    network.route(pkt_scratch, ingresses[i], scratch);
    require(scratch.status.ok() && scratch.found, "warm-up route");
  }
  const std::size_t a0 = g_allocs;
  const double t0 = now_s();
  std::size_t total = 0;
  for (std::size_t rd = 0; rd < rounds; ++rd) {
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      pkt_scratch = pkts[i];
      network.route(pkt_scratch, ingresses[i], scratch);
      ++total;
    }
  }
  const double elapsed = now_s() - t0;
  *allocs_per_packet =
      static_cast<double>(g_allocs - a0) / static_cast<double>(total);
  return static_cast<double>(total) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header(
      "Chaos", "k-replica placement + fallback retrieval under crashes",
      ">= 99% survivor retrievals succeed; fault hook is allocation-free");

  const std::size_t n = smoke ? 64 : 128;
  const std::size_t items = smoke ? 400 : 1500;
  const std::size_t batch = smoke ? 100 : 200;
  const std::size_t throughput_rounds = smoke ? 5 : 40;

  const topology::EdgeNetwork desc =
      bench::make_waxman_network(n, 4, 3, 9200 + n);
  auto built = core::GredSystem::create(desc, bench::gred_options(30));
  require(built.ok(), "GredSystem::create");
  core::GredSystem& sys = built.value();
  require(sys.enable_replication(core::ReplicationOptions{2}).ok(),
          "enable_replication");
  sden::SdenNetwork& network = sys.network();

  Rng rng(77);
  std::vector<std::string> ids;
  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  ids.reserve(items);
  pkts.reserve(items);
  ingresses.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id = "chaos-" + std::to_string(i);
    require(sys.place(id, "payload-" + id, rng.next_below(n)).ok(), "place");
    ids.push_back(id);
    sden::Packet p;
    p.type = sden::PacketType::kRetrieval;
    p.data_id = id;
    const crypto::DataKey key(id);
    p.target = {key.position().x, key.position().y};
    p.set_key(key);
    pkts.push_back(p);
    ingresses.push_back(rng.next_below(n));
  }

  // --- Faults disabled: baseline throughput, allocs/pkt == 0, and the
  // healthy stretch of the same retrieval mix. ---
  double nofault_allocs = 0.0;
  const double nofault_pps =
      routed_pps(network, pkts, ingresses, throughput_rounds, &nofault_allocs);
  require(nofault_allocs == 0.0,
          "faults-disabled fast path performed a heap allocation");
  double healthy_stretch_sum = 0.0;
  std::size_t healthy_count = 0;
  for (std::size_t i = 0; i < items; ++i) {
    auto out = sys.retrieve_with_fallback(ids[i], ingresses[i]);
    require(out.ok() && out.value().found, "healthy retrieval");
    require(out.value().attempts == 1, "healthy retrieval retried");
    healthy_stretch_sum += out.value().report.stretch;
    ++healthy_count;
  }
  const double healthy_stretch =
      healthy_stretch_sum / static_cast<double>(healthy_count);
  std::printf("baseline: %9.0f pkts/s, allocs/pkt %.2f, stretch %.3f\n",
              nofault_pps, nofault_allocs, healthy_stretch);

  // --- Crash plan: kill ~5% of the switches, stale windows included.
  fault::FaultPlanOptions fopt;
  fopt.event_count = (n + 19) / 20;  // ceil: at least 5% of switches
  fopt.schedule_length = 40 * fopt.event_count;
  fopt.stale_window = 8;
  fopt.crash_weight = 1.0;
  fopt.link_down_weight = 0.0;
  fopt.flaky_weight = 0.0;
  fopt.seed = 4242;
  auto plan = fault::FaultPlan::generate(network.description(), fopt);
  require(plan.ok(), "FaultPlan::generate");
  const std::size_t planned = plan.value().events().size();
  const std::size_t kills = plan.value().switch_crashes();
  require(kills * 20 >= n, "plan kills fewer than 5% of switches");

  std::set<std::size_t> deadlines;
  for (const auto& e : plan.value().events()) {
    deadlines.insert(e.at_event);
    deadlines.insert(e.repair_at);
  }

  fault::FaultSession session(sys, std::move(plan).value());
  core::RetryPolicy policy;
  policy.max_attempts = 4;

  auto alive_ingress = [&]() -> sden::SwitchId {
    const auto& parts = sys.controller().space().participants();
    for (;;) {
      const sden::SwitchId s = parts[rng.next_below(parts.size())];
      if (!session.state().switch_is_down(s)) return s;
    }
  };

  std::size_t retrievals = 0;
  std::size_t successes = 0;
  std::size_t attempts_total = 0;
  std::size_t fallbacks_total = 0;
  std::size_t recovered_total = 0;
  double chaos_stretch_sum = 0.0;
  std::size_t chaos_stretch_count = 0;
  for (const std::size_t t : deadlines) {
    auto advanced = session.advance(t);
    require(advanced.ok(), "FaultSession::advance");
    for (std::size_t i = 0; i < batch; ++i) {
      const std::string& id = ids[rng.next_below(ids.size())];
      auto out = sys.retrieve_with_fallback(id, alive_ingress(), policy);
      require(out.ok(), "fallback retrieval returned unclassified error");
      ++retrievals;
      attempts_total += out.value().attempts;
      fallbacks_total += out.value().fallbacks;
      if (out.value().found) {
        ++successes;
        if (out.value().recovered) ++recovered_total;
        chaos_stretch_sum += out.value().report.stretch;
        ++chaos_stretch_count;
      }
    }
  }
  auto finished = session.finish();
  require(finished.ok(), "FaultSession::finish");
  require(!session.state().any(), "fault state not empty after finish");

  // k = 2 with one crash repaired at a time: every item survives, so
  // the success-rate denominator is all retrievals.
  const double success_rate =
      static_cast<double>(successes) / static_cast<double>(retrievals);
  const double mean_attempts =
      static_cast<double>(attempts_total) / static_cast<double>(retrievals);
  const double mean_fallbacks =
      static_cast<double>(fallbacks_total) / static_cast<double>(retrievals);
  const double chaos_stretch =
      chaos_stretch_sum / static_cast<double>(chaos_stretch_count);
  const double stretch_degradation_pct =
      (chaos_stretch - healthy_stretch) / healthy_stretch * 100.0;
  require(success_rate >= 0.99, "survivor success rate below 99%");

  std::printf(
      "chaos: %zu crashes (of %zu switches), %zu items wiped\n"
      "       %zu retrievals, success %.4f, attempts %.3f, fallbacks %.3f, "
      "recovered %zu\n"
      "       stretch %.3f (healthy %.3f, degradation %+.1f%%)\n",
      kills, n, session.items_wiped(), retrievals, success_rate,
      mean_attempts, mean_fallbacks, recovered_total, chaos_stretch,
      healthy_stretch, stretch_degradation_pct);

  // --- After all repairs: fast path with the (empty) fault state
  // still installed — the steady-state cost is one predicted branch
  // and must stay allocation-free. Items moved during repairs, so
  // retarget each packet at its current primary home. ---
  std::vector<sden::Packet> post_pkts;
  post_pkts.reserve(items);
  std::vector<sden::SwitchId> post_ingresses;
  post_ingresses.reserve(items);
  for (const std::string& id : ids) {
    sden::Packet p;
    p.type = sden::PacketType::kRetrieval;
    p.data_id = id;
    const crypto::DataKey key(id);
    p.target = {key.position().x, key.position().y};
    p.set_key(key);
    post_pkts.push_back(p);
    post_ingresses.push_back(alive_ingress());
  }
  double post_allocs = 0.0;
  const double post_pps = routed_pps(network, post_pkts, post_ingresses,
                                     throughput_rounds, &post_allocs);
  require(post_allocs == 0.0,
          "post-chaos fast path performed a heap allocation");
  std::printf("post-chaos: %9.0f pkts/s, allocs/pkt %.2f\n", post_pps,
              post_allocs);

  bench::write_json(
      "BENCH_chaos.json",
      {
          {"switches", static_cast<double>(n)},
          {"items", static_cast<double>(items)},
          {"events_planned", static_cast<double>(planned)},
          {"switches_killed", static_cast<double>(kills)},
          {"items_wiped", static_cast<double>(session.items_wiped())},
          {"nofault_pkts_per_sec", nofault_pps},
          {"nofault_allocs_per_packet", nofault_allocs},
          {"chaos_retrievals", static_cast<double>(retrievals)},
          {"chaos_success_rate", success_rate},
          {"chaos_mean_attempts", mean_attempts},
          {"chaos_mean_fallbacks", mean_fallbacks},
          {"chaos_recovered", static_cast<double>(recovered_total)},
          {"healthy_mean_stretch", healthy_stretch},
          {"chaos_mean_stretch", chaos_stretch},
          {"stretch_degradation_pct", stretch_degradation_pct},
          {"post_chaos_pkts_per_sec", post_pps},
          {"post_chaos_allocs_per_packet", post_allocs},
      });
  std::printf("\nwrote BENCH_chaos.json\n");
  return 0;
}
