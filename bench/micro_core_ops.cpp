// Microbenchmarks (google-benchmark) for the primitive operations every
// placement/retrieval touches: hashing, key derivation, the control
// plane's embedding/DT pipeline, greedy routing, Chord lookups, a full
// data-plane walk, and the sharded runtime's SPSC handoff primitives.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_util.hpp"
#include "common/spsc_ring.hpp"
#include "crypto/sha256.hpp"
#include "geometry/delaunay.hpp"
#include "graph/shortest_path.hpp"
#include "linalg/mds.hpp"
#include "sden/route_plan.hpp"

using namespace gred;

namespace {

void BM_Sha256_64B(benchmark::State& state) {
  const std::string msg(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(msg));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  const std::string msg(4096, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(msg));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

void BM_DataKeyDerivation(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    crypto::DataKey key("item-" + std::to_string(i++));
    benchmark::DoNotOptimize(key.position());
  }
}
BENCHMARK(BM_DataKeyDerivation);

void BM_DelaunayBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  std::vector<geometry::Point2D> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  for (auto _ : state) {
    auto dt = geometry::DelaunayTriangulation::build(pts);
    benchmark::DoNotOptimize(dt);
  }
}
BENCHMARK(BM_DelaunayBuild)->Arg(50)->Arg(100)->Arg(200);

void BM_ClassicalMds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const topology::EdgeNetwork net =
      bench::make_waxman_network(n, 1, 3, 900 + n);
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());
  linalg::Matrix dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) dist(i, j) = apsp.dist(i, j);
  }
  for (auto _ : state) {
    auto mds = linalg::classical_mds(dist, 2);
    benchmark::DoNotOptimize(mds);
  }
}
BENCHMARK(BM_ClassicalMds)->Arg(50)->Arg(100);

void BM_ControlPlaneFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const topology::EdgeNetwork net =
      bench::make_waxman_network(n, 10, 3, 910 + n);
  for (auto _ : state) {
    auto sys = core::GredSystem::create(net, bench::gred_options(50));
    benchmark::DoNotOptimize(sys);
  }
}
BENCHMARK(BM_ControlPlaneFull)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_GredPlacementWalk(benchmark::State& state) {
  const topology::EdgeNetwork net =
      bench::make_waxman_network(100, 10, 3, 920);
  auto sys = core::GredSystem::create(net, bench::gred_options(50));
  if (!sys.ok()) state.SkipWithError("system creation failed");
  Rng rng(5);
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = sys.value().place("bench-" + std::to_string(i++), "",
                               rng.next_below(100));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GredPlacementWalk);

void BM_FlowTableRelayLookup(benchmark::State& state) {
  // A relay table the size GRED installs on busy transit switches; the
  // indexed find_relay is a single flat-map probe regardless of size.
  sden::FlowTable table;
  const std::size_t entries = 64;
  for (std::size_t i = 0; i < entries; ++i) {
    table.add_relay({i, i + 1, i + 2, 1000 + i});
  }
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find_relay(1000 + rng.next_below(entries)));
  }
}
BENCHMARK(BM_FlowTableRelayLookup);

void BM_FlowTableGreedyStep(benchmark::State& state) {
  // One greedy forwarding decision: best_candidate over the SoA
  // position columns for a typical DT degree.
  const auto degree = static_cast<std::size_t>(state.range(0));
  sden::FlowTable table;
  Rng rng(12);
  for (std::size_t i = 0; i < degree; ++i) {
    sden::NeighborEntry e;
    e.neighbor = i;
    e.first_hop = i;
    e.physical = true;
    e.position = {rng.next_double(), rng.next_double()};
    table.add_neighbor(e);
  }
  for (auto _ : state) {
    const geometry::Point2D target{rng.next_double(), rng.next_double()};
    benchmark::DoNotOptimize(table.best_candidate(target));
  }
}
BENCHMARK(BM_FlowTableGreedyStep)->Arg(6)->Arg(12)->Arg(24);

void BM_GredRetrievalFastPath(benchmark::State& state) {
  // Full compiled-plan retrieval walk with reused scratch — the
  // steady-state data-plane unit of work (allocation-free).
  const std::size_t n = 100;
  const topology::EdgeNetwork net =
      bench::make_waxman_network(n, 4, 3, 940);
  auto sys = core::GredSystem::create(net, bench::gred_options(50));
  if (!sys.ok()) state.SkipWithError("system creation failed");
  auto& network = sys.value().network();
  Rng rng(7);
  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  for (std::size_t i = 0; i < 512; ++i) {
    const std::string id = "micro-" + std::to_string(i);
    if (!sys.value().place(id, "payload", rng.next_below(n)).ok()) {
      state.SkipWithError("placement failed");
      break;
    }
    sden::Packet p;
    p.type = sden::PacketType::kRetrieval;
    p.data_id = id;
    const crypto::DataKey key(id);
    p.target = {key.position().x, key.position().y};
    p.set_key(key);
    pkts.push_back(p);
    ingresses.push_back(rng.next_below(n));
  }
  sden::RouteResult scratch;
  sden::Packet pkt;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i++ & 511;
    pkt = pkts[j];
    network.route(pkt, ingresses[j], scratch);
    benchmark::DoNotOptimize(scratch.found);
  }
}
BENCHMARK(BM_GredRetrievalFastPath);

void BM_SpscRingPushPop(benchmark::State& state) {
  // Single-item handoff floor with the ring hot in cache: one producer
  // publish (release store) plus one consumer retire, no contention.
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  std::uint64_t out = 0;
  for (auto _ : state) {
    ring.push(v++);
    ring.pop(out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingBatch64(benchmark::State& state) {
  // Batched variant: one tail publish and one head retire amortized
  // over 64 continuations — the sharded data plane's drain shape.
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t buf[64];
  for (std::uint64_t i = 0; i < 64; ++i) buf[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push_batch(buf, 64));
    benchmark::DoNotOptimize(ring.pop_batch(buf, 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SpscRingBatch64);

void BM_SpscCrossThreadHandoff(benchmark::State& state) {
  // Round trip through an echo thread over a ring pair — the real
  // cross-shard cost including the coherence misses the single-thread
  // benchmarks above cannot see. Arg is the batch size per trip
  // (1 = latency-bound, 64 = throughput shape). On an oversubscribed
  // host (1-core CI) this degenerates to scheduler switches; the
  // numbers are still reported honestly.
  const auto batch = static_cast<std::size_t>(state.range(0));
  SpscRing<std::uint64_t> to(1024);
  SpscRing<std::uint64_t> back(1024);
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    std::uint64_t buf[64];
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = to.pop_batch(buf, 64);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      std::size_t pushed = 0;
      while (pushed < n) pushed += back.push_batch(buf + pushed, n - pushed);
    }
  });
  std::uint64_t buf[64];
  std::uint64_t v = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) buf[i] = v++;
    std::size_t pushed = 0;
    while (pushed < batch) {
      pushed += to.push_batch(buf + pushed, batch - pushed);
    }
    std::size_t got = 0;
    while (got < batch) {
      const std::size_t n = back.pop_batch(buf + got, batch - got);
      if (n == 0) std::this_thread::yield();
      got += n;
    }
    benchmark::DoNotOptimize(buf[0]);
  }
  stop.store(true, std::memory_order_relaxed);
  echo.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SpscCrossThreadHandoff)->Arg(1)->Arg(64);

void BM_ApspDeltaEdgeToggle(benchmark::State& state) {
  // One incremental control-plane APSP update: add a link, delta-patch
  // the distance matrix, remove it, delta-patch back. Two delta ops per
  // iteration; the matrix provably returns to its original state.
  const auto n = static_cast<std::size_t>(state.range(0));
  const topology::EdgeNetwork net =
      bench::make_waxman_network(n, 1, 3, 950 + n);
  graph::Graph g = net.switches();
  graph::ApspResult apsp = graph::all_pairs_shortest_paths(g, true);
  Rng rng(13);
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  for (int tries = 0; tries < 256; ++tries) {
    const graph::NodeId x = rng.next_below(n);
    const graph::NodeId y = rng.next_below(n);
    if (x != y && g.find_edge(x, y) == nullptr) {
      u = x;
      v = y;
      break;
    }
  }
  if (u == v) {
    state.SkipWithError("no non-adjacent pair found");
    return;
  }
  for (auto _ : state) {
    if (!g.add_edge(u, v, 1.0).ok()) {
      state.SkipWithError("add_edge failed");
      break;
    }
    benchmark::DoNotOptimize(graph::apsp_add_edge(apsp, g, u, v));
    g.remove_edge(u, v);
    benchmark::DoNotOptimize(graph::apsp_remove_edge(apsp, g, u, v, 1.0));
  }
}
BENCHMARK(BM_ApspDeltaEdgeToggle)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_DtSiteInsertRemove(benchmark::State& state) {
  // Localized Bowyer-Watson repair: insert a random site into an
  // n-site DT, then remove it — the switch join/leave unit of work on
  // the incremental path (no full rebuild).
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(43);
  std::vector<geometry::Point2D> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  auto built = geometry::DelaunayTriangulation::build(pts);
  if (!built.ok()) {
    state.SkipWithError("DT build failed");
    return;
  }
  geometry::DelaunayTriangulation dt = std::move(built).value();
  for (auto _ : state) {
    const geometry::Point2D p{rng.next_double(), rng.next_double()};
    auto idx = dt.insert(p);
    if (!idx.ok() || !dt.remove(idx.value()).ok()) {
      state.SkipWithError("insert/remove failed");
      break;
    }
  }
}
BENCHMARK(BM_DtSiteInsertRemove)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_PlanPatchSwitch(benchmark::State& state) {
  // Per-switch route-plan patch: prepare (cold, allocating) + commit
  // (hot, index writes only) of one switch region against a compiled
  // 100-switch plan — the plan-maintenance unit of churn.
  const std::size_t n = 100;
  const topology::EdgeNetwork net =
      bench::make_waxman_network(n, 4, 3, 960);
  auto sys = core::GredSystem::create(net, bench::gred_options(50));
  if (!sys.ok()) {
    state.SkipWithError("system creation failed");
    return;
  }
  auto& network = sys.value().network();
  std::vector<std::uint32_t> owned(n);
  for (std::size_t i = 0; i < n; ++i) owned[i] = static_cast<std::uint32_t>(i);
  sden::RoutePlan plan;
  network.compile_plan_subset(plan, owned.data(), owned.size());
  sden::PlanPatch patch;
  Rng rng(9);
  for (auto _ : state) {
    const auto t = static_cast<std::uint32_t>(rng.next_below(n));
    if (!network.prepare_plan_patch(plan, &t, 1, patch)) {
      network.compile_plan_subset(plan, owned.data(), owned.size());
      continue;
    }
    network.commit_plan_patch(plan, patch);
  }
}
BENCHMARK(BM_PlanPatchSwitch);

void BM_ChordLookup(benchmark::State& state) {
  const topology::EdgeNetwork net =
      bench::make_waxman_network(100, 10, 3, 930);
  auto ring = chord::ChordRing::build(net);
  if (!ring.ok()) state.SkipWithError("ring build failed");
  Rng rng(6);
  for (auto _ : state) {
    auto trace = ring.value().lookup(rng.next_below(1000), rng.next_u64());
    benchmark::DoNotOptimize(trace);
  }
}
BENCHMARK(BM_ChordLookup);

}  // namespace

BENCHMARK_MAIN();
