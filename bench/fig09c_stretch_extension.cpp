// Fig. 9(c): routing stretch of GRED vs extended-GRED vs Chord across
// network sizes (Section VII-C3). Extended-GRED places every item in a
// server on a neighbor switch of its destination switch (the range
// extension actually active for the item's home server), adding one
// handoff hop. Expectation: extended-GRED slightly above GRED, both
// far below Chord.
#include <cstdio>

#include "bench_util.hpp"

using namespace gred;

namespace {

/// Stretch samples with the range extension active for every item's
/// home server: before placing an item, the controller extends the
/// management range of the server that would receive it, so the data
/// lands on the delegate at a neighbor switch — the paper's
/// "extended-GRED".
std::vector<double> extended_gred_samples(core::GredSystem& sys,
                                          std::size_t items,
                                          std::uint64_t seed) {
  Rng rng(seed ^ 0xe47);
  std::vector<double> samples;
  samples.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id =
        "ext-" + std::to_string(seed) + "-" + std::to_string(i);
    const auto placement = sys.controller().expected_placement(
        sys.network(), crypto::DataKey(id));
    if (!placement.ok()) std::abort();
    const topology::ServerId owner = placement.value().server;
    if (!sys.extend_range(owner).ok()) std::abort();
    auto r = sys.place(id, "", rng.next_below(sys.network().switch_count()));
    if (!r.ok()) std::abort();
    samples.push_back(r.value().stretch);
    // Remove the rewrite directly (retract would migrate data back).
    sys.network()
        .switch_at(placement.value().sw)
        .table()
        .remove_rewrite(owner);
  }
  return samples;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 9(c)", "routing stretch with range extension vs network size",
      "extended-GRED slightly above GRED, both far below Chord");

  Table table({"switches", "Chord", "GRED", "extended-GRED"});
  const std::vector<std::size_t> sizes = {20, 50, 100, 150, 200};
  std::vector<std::vector<std::string>> rows(sizes.size());
  bench::parallel_trials(sizes.size(), [&](std::size_t k) {
    const std::size_t n = sizes[k];
    const topology::EdgeNetwork net =
        bench::make_waxman_network(n, 10, 3, 3000 + n);

    auto gred_sys = core::GredSystem::create(net, bench::gred_options(50));
    auto ext_sys = core::GredSystem::create(net, bench::gred_options(50));
    auto ring = chord::ChordRing::build(net);
    if (!gred_sys.ok() || !ext_sys.ok() || !ring.ok()) std::abort();

    const Summary chord_s =
        summarize(bench::chord_stretch_samples(ring.value(), net, 100, n));
    const Summary gred_s =
        summarize(bench::gred_stretch_samples(gred_sys.value(), 100, n));
    const Summary ext_s =
        summarize(extended_gred_samples(ext_sys.value(), 100, n));

    rows[k] = {std::to_string(n), bench::mean_ci_cell(chord_s),
               bench::mean_ci_cell(gred_s), bench::mean_ci_cell(ext_s)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
