// Control-plane scaling bench: wall-clock for the three parallelized
// hot paths — APSP (weighted + unweighted, as Controller::recompute_apsp
// runs them), the C-regulation loop, and the nearest-site lookup — at
// threads=1 vs the configured pool (GRED_THREADS, default: all cores).
// Emits BENCH_control_plane.json so CI can track the speedups. The
// parallel runs are checked bit-identical to the serial ones before any
// number is reported.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "geometry/site_grid.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

using namespace gred;

namespace {

/// Best-of-3 wall-clock milliseconds.
double time_ms(const std::function<void()>& fn) {
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (run == 0 || ms < best) best = ms;
  }
  return best;
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "determinism check failed: %s\n", what);
    std::abort();
  }
}

}  // namespace

int main() {
  ThreadPool serial(1);
  ThreadPool& pool = global_pool();
  const auto threads = static_cast<double>(pool.thread_count());

  bench::print_header(
      "Control plane", "APSP / C-regulation / nearest-site scaling",
      "parallel output identical to serial; speedup bounded by cores");
  std::printf("pool threads: %zu (GRED_THREADS or hardware)\n\n",
              pool.thread_count());

  // --- APSP: 400-switch Waxman, both tables like recompute_apsp. ---
  const topology::EdgeNetwork net = bench::make_waxman_network(400, 1, 3, 424);
  const graph::Graph& g = net.switches();
  graph::ApspResult serial_hops, serial_lat, pool_hops, pool_lat;
  const double apsp_serial_ms = time_ms([&] {
    serial_hops = graph::all_pairs_shortest_paths(g, false, &serial);
    serial_lat = graph::all_pairs_shortest_paths(g, true, &serial);
  });
  const double apsp_pool_ms = time_ms([&] {
    pool_hops = graph::all_pairs_shortest_paths(g, false, &pool);
    pool_lat = graph::all_pairs_shortest_paths(g, true, &pool);
  });
  require(serial_hops.dist == pool_hops.dist &&
              serial_hops.next == pool_hops.next,
          "unweighted APSP");
  require(serial_lat.dist == pool_lat.dist && serial_lat.next == pool_lat.next,
          "weighted APSP");
  const double apsp_speedup = apsp_serial_ms / apsp_pool_ms;
  std::printf("APSP (400 switches, both tables): %.1f ms serial, %.1f ms "
              "pooled, speedup %.2fx\n",
              apsp_serial_ms, apsp_pool_ms, apsp_speedup);

  // --- C-regulation: 400 sites, 20 iterations, 20k samples/iter. ---
  Rng site_rng(77);
  std::vector<geometry::Point2D> sites;
  for (int i = 0; i < 400; ++i) {
    sites.push_back({site_rng.next_double(), site_rng.next_double()});
  }
  geometry::CvtOptions cvt;
  cvt.samples_per_iteration = 20000;
  cvt.max_iterations = 20;
  geometry::CvtResult serial_cvt, pool_cvt;
  cvt.pool = &serial;
  const double cvt_serial_ms = time_ms([&] {
    Rng rng(7);
    serial_cvt = geometry::c_regulation(sites, cvt, rng);
  });
  cvt.pool = &pool;
  const double cvt_pool_ms = time_ms([&] {
    Rng rng(7);
    pool_cvt = geometry::c_regulation(sites, cvt, rng);
  });
  require(serial_cvt.sites == pool_cvt.sites &&
              serial_cvt.energy_history == pool_cvt.energy_history,
          "C-regulation");
  const double cvt_speedup = cvt_serial_ms / cvt_pool_ms;
  std::printf("C-regulation (400 sites, 20 iters): %.2f ms/iter serial, "
              "%.2f ms/iter pooled, speedup %.2fx\n",
              cvt_serial_ms / 20.0, cvt_pool_ms / 20.0, cvt_speedup);

  // --- Nearest-site: grid index vs brute-force scan. ---
  const geometry::Rect domain;
  const geometry::SiteGrid grid(serial_cvt.sites, domain);
  const std::size_t queries = 200000;
  Rng qrng(13);
  std::vector<geometry::Point2D> pts;
  pts.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    pts.push_back({qrng.next_double(), qrng.next_double()});
  }
  std::size_t sink_grid = 0, sink_brute = 0;
  const double grid_ms = time_ms([&] {
    std::size_t acc = 0;
    for (const auto& p : pts) acc += grid.nearest(p);
    sink_grid = acc;
  });
  const double brute_ms = time_ms([&] {
    std::size_t acc = 0;
    for (const auto& p : pts) acc += geometry::nearest_site(serial_cvt.sites, p);
    sink_brute = acc;
  });
  require(sink_grid == sink_brute, "nearest-site lookup");
  const double grid_qps = static_cast<double>(queries) / (grid_ms / 1000.0);
  const double brute_qps = static_cast<double>(queries) / (brute_ms / 1000.0);
  std::printf("nearest-site (400 sites, 200k queries): %.2fM/s grid, "
              "%.2fM/s brute force, speedup %.1fx\n",
              grid_qps / 1e6, brute_qps / 1e6, grid_qps / brute_qps);

  // --- Phase timers: one full control-plane build with the obs layer
  // on. The per-phase histograms (APSP, MDS embed, C-regulation, DT
  // build, install) come straight from the instrumented library, so
  // this section also proves the timers fire where DESIGN.md says. ---
  obs::registry().reset_values();
  obs::set_enabled(true);
  {
    const topology::EdgeNetwork obs_net =
        bench::make_waxman_network(200, 2, 3, 777);
    auto sys = core::GredSystem::create(obs_net, bench::gred_options(30));
    require(sys.ok(), "GredSystem::create (obs section)");
  }
  obs::set_enabled(false);
  std::printf("\ncontrol-plane phases (200 switches, obs on):\n");
  const obs::Registry::Snapshot phases = obs::registry().snapshot();
  for (const auto& [name, hist] : phases.histograms) {
    std::printf("  %-28s %8.2f ms (runs %llu)\n", name.c_str(), hist.sum,
                static_cast<unsigned long long>(hist.count));
  }
  obs::ExportSources phase_sources;
  phase_sources.registry = &obs::registry();
  require(obs::write_text_file("BENCH_control_plane_obs.json",
                               obs::to_json(phase_sources))
              .ok(),
          "write BENCH_control_plane_obs.json");

  bench::write_json(
      "BENCH_control_plane.json",
      {{"threads", threads},
       {"apsp_ms_threads1", apsp_serial_ms},
       {"apsp_ms", apsp_pool_ms},
       {"apsp_speedup", apsp_speedup},
       {"cvt_ms_per_iter_threads1", cvt_serial_ms / 20.0},
       {"cvt_ms_per_iter", cvt_pool_ms / 20.0},
       {"cvt_speedup", cvt_speedup},
       {"grid_lookups_per_sec", grid_qps},
       {"brute_lookups_per_sec", brute_qps},
       {"lookup_speedup", grid_qps / brute_qps}});
  std::printf("\nwrote BENCH_control_plane.json\n");
  std::printf("wrote BENCH_control_plane_obs.json (phase timings)\n");
  return 0;
}
