// Control-plane scaling bench: wall-clock for the three parallelized
// hot paths — APSP (weighted + unweighted, as Controller::recompute_apsp
// runs them), the C-regulation loop, and the nearest-site lookup — at
// threads=1 vs the configured pool (GRED_THREADS, default: all cores),
// plus the GRED_INCREMENTAL churn sweep: per-event cost of the
// incremental control plane (delta-APSP + localized DT repair + plan
// patching) vs the full recompute-and-reinstall path at n in
// {256, 1024, 4096}. Emits BENCH_control_plane.json so CI can track
// the speedups. Every parallel or incremental run is checked
// bit-identical to its serial/full counterpart before any number is
// reported. `--smoke` shrinks the churn sweep for CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "crypto/data_key.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/site_grid.hpp"
#include "graph/shortest_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sden/network.hpp"
#include "shard/sharded_data_plane.hpp"

using namespace gred;

// Global allocation counter for the churn section's steady-state
// assertion (same hook as bench_data_plane): routing through a patched
// plan must stay alloc-free.
static std::atomic<std::size_t> g_allocs{0};
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// Best-of-3 wall-clock milliseconds.
double time_ms(const std::function<void()>& fn) {
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (run == 0 || ms < best) best = ms;
  }
  return best;
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fflush(stdout);
    std::fprintf(stderr, "determinism check failed: %s\n", what);
    std::abort();
  }
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

/// Full RouteResult equality, statuses included — the predicate the
/// differential tests use.
bool results_equal(const sden::RouteResult& a, const sden::RouteResult& b) {
  if (a.status.ok() != b.status.ok()) return false;
  if (!a.status.ok() &&
      (a.status.error().code != b.status.error().code ||
       a.status.error().message != b.status.error().message)) {
    return false;
  }
  return a.switch_path == b.switch_path && a.path_cost == b.path_cost &&
         a.delivered_to == b.delivered_to && a.found == b.found &&
         a.responder == b.responder && a.payload == b.payload;
}

/// Field-wise flow-table equality of every switch (entry order
/// included: match semantics are first-wins over the vectors).
bool flow_tables_equal(const sden::SdenNetwork& a,
                       const sden::SdenNetwork& b) {
  if (a.switch_count() != b.switch_count()) return false;
  for (sden::SwitchId s = 0; s < a.switch_count(); ++s) {
    const sden::FlowTable& ta = a.const_switch_at(s).table();
    const sden::FlowTable& tb = b.const_switch_at(s).table();
    if (ta.neighbors().size() != tb.neighbors().size() ||
        ta.relays().size() != tb.relays().size() ||
        ta.rewrites().size() != tb.rewrites().size()) {
      return false;
    }
    for (std::size_t i = 0; i < ta.neighbors().size(); ++i) {
      const sden::NeighborEntry& x = ta.neighbors()[i];
      const sden::NeighborEntry& y = tb.neighbors()[i];
      if (x.neighbor != y.neighbor || x.position.x != y.position.x ||
          x.position.y != y.position.y || x.physical != y.physical ||
          x.first_hop != y.first_hop) {
        return false;
      }
    }
    for (std::size_t i = 0; i < ta.relays().size(); ++i) {
      const sden::RelayEntry& x = ta.relays()[i];
      const sden::RelayEntry& y = tb.relays()[i];
      if (x.sour != y.sour || x.pred != y.pred || x.succ != y.succ ||
          x.dest != y.dest) {
        return false;
      }
    }
    for (std::size_t i = 0; i < ta.rewrites().size(); ++i) {
      const sden::RewriteEntry& x = ta.rewrites()[i];
      const sden::RewriteEntry& y = tb.rewrites()[i];
      if (x.original != y.original || x.replacement != y.replacement ||
          x.via_switch != y.via_switch) {
        return false;
      }
    }
  }
  return true;
}

struct ChurnReport {
  std::size_t n = 0;
  std::size_t events = 0;              ///< successful churn events
  std::size_t incremental_events = 0;  ///< ... that took the delta path
  double event_us_p50 = 0;
  double event_us_p99 = 0;
  double full_rebuild_ms = 0;  ///< mean full recompute-and-reinstall
  double speedup = 0;          ///< full_rebuild / incremental p50
  double allocs_per_packet = 0;
};

/// One churn size: a GRED system absorbs a seeded mix of switch
/// join/leave, link add/remove, and range extend/retract events on the
/// incremental path, each timed end-to-end. Identity is asserted
/// against ground truth before any number is reported: at n <= 256 a
/// full-rebuild twin runs the same events in lockstep (APSP tables,
/// flow tables, and routed packets compared after every event); at
/// every n the final delta-maintained APSP equals a fresh recompute,
/// the repaired DT equals a fresh Bowyer-Watson build, and the
/// patch_plans-maintained sharded plans route every packet identically
/// to freshly recompiled ones.
ChurnReport run_churn(std::size_t n, bool smoke) {
  ChurnReport rep;
  rep.n = n;
  const bool lockstep = n <= 256;
  core::VirtualSpaceOptions opts = bench::gred_options(smoke ? 10 : 30);
  // Jacobi MDS is O(n^3) — fine at 256, prohibitive beyond. The churn
  // machinery under test (delta-APSP, DT repair, plan patching) is
  // embedding-agnostic, so the larger sizes embed with Vivaldi.
  if (n > 256) opts.embedding = core::EmbeddingAlgorithm::kVivaldi;
  auto made =
      core::GredSystem::create(bench::make_waxman_network(n, 1, 3, 8100 + n),
                               opts);
  require(made.ok(), "GredSystem::create (churn)");
  core::GredSystem sys = std::move(made).value();
  sys.controller().set_incremental(true);
  sden::SdenNetwork& net = sys.network();

  std::optional<core::GredSystem> twin;
  if (lockstep) {
    auto t = core::GredSystem::create(
        bench::make_waxman_network(n, 1, 3, 8100 + n), opts);
    require(t.ok(), "GredSystem::create (churn twin)");
    twin.emplace(std::move(t).value());
    twin->controller().set_incremental(false);
  }

  // Identical seeded storage on both systems, plus retrieval packets.
  const std::size_t items = smoke ? 150 : 400;
  Rng rng(4800 + n);
  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id =
        "churn-" + std::to_string(n) + "-" + std::to_string(i);
    const sden::SwitchId ingress = rng.next_below(n);
    require(sys.place(id, "v-" + id, ingress).ok(), "churn place");
    if (twin.has_value()) {
      require(twin->place(id, "v-" + id, ingress).ok(), "churn twin place");
    }
    sden::Packet p;
    p.type = sden::PacketType::kRetrieval;
    p.data_id = id;
    const crypto::DataKey key(id);
    p.target = {key.position().x, key.position().y};
    p.set_key(key);
    pkts.push_back(p);
    ingresses.push_back(rng.next_below(n));
  }

  // 4-shard data plane kept current with patch_plans across the churn.
  shard::ShardedDataPlane sdp(net, 4);

  sden::Packet pkt_scratch;
  sden::RouteResult scratch;
  auto warm = [&](sden::SdenNetwork& target) {
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      pkt_scratch = pkts[i];
      target.route(pkt_scratch, ingresses[i], scratch);
    }
  };
  warm(net);
  if (twin.has_value()) warm(twin->network());

  core::Controller& ctrl = sys.controller();
  const std::size_t rounds =
      smoke ? 12 : (n >= 4096 ? 12 : (n >= 1024 ? 20 : 40));
  std::vector<double> event_us;
  std::vector<std::uint32_t> touched32;
  for (std::size_t step = 0; step < rounds; ++step) {
    const std::vector<sden::SwitchId>& parts = ctrl.space().participants();
    const sden::SwitchId a = parts[rng.next_below(parts.size())];
    // Churn partner: a nearby participant (2-3 hops), reservoir-sampled
    // from a's APSP row. Waxman attachment is distance-biased, so edge
    // churn adds local links too — a uniformly random partner would be
    // a global wormhole no edge deployment wires up, and its affected
    // region (hence per-event cost) grows with n instead of staying
    // region-proportional. Falls back to uniform when a's 2-3-hop
    // neighborhood has no participants.
    sden::SwitchId b = parts[rng.next_below(parts.size())];
    {
      std::size_t near_seen = 0;
      for (const sden::SwitchId t : parts) {
        const double d = ctrl.apsp().dist(a, t);
        if (d < 2.0 || d > 3.0) continue;
        ++near_seen;
        if (rng.next_below(near_seen) == 0) b = t;
      }
    }
    const topology::ServerId srv = rng.next_below(net.server_count());
    // Link removal must name an existing edge: a uniformly (or
    // locally) sampled partner is almost never adjacent, which would
    // turn every remove round into a silent no-op.
    sden::SwitchId b_adj = b;
    {
      const std::vector<graph::EdgeTo>& adj =
          net.description().switches().neighbors(a);
      if (!adj.empty()) b_adj = adj[rng.next_below(adj.size())].to;
    }
    const bool may_remove = parts.size() > 8;
    const std::uint64_t op = rng.next_below(6);
    auto apply = [&](core::GredSystem& s) -> bool {
      switch (op) {
        case 0:
          return s.add_switch({a, b}, /*servers=*/1).ok();
        case 1:
          return may_remove ? s.remove_switch(a).ok() : s.add_link(a, b).ok();
        case 2:
          return s.add_link(a, b).ok();
        case 3:
          return s.remove_link(a, b_adj).ok();
        case 4:
          return s.extend_range(srv).ok();
        default:
          return s.retract_range(srv).ok();
      }
    };
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = apply(sys);
    const auto t1 = std::chrono::steady_clock::now();
    if (twin.has_value()) {
      require(apply(*twin) == ok, "churn twins diverged on op outcome");
    }
    if (!ok) continue;  // e.g. duplicate link, would-disconnect removal
    event_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    if (ctrl.last_event_incremental()) {
      ++rep.incremental_events;
      const std::vector<topology::SwitchId>& aff =
          ctrl.last_affected_switches();
      touched32.assign(aff.begin(), aff.end());
      sdp.patch_plans(touched32.data(), touched32.size());
    } else {
      sdp.recompile();
    }
    if (twin.has_value()) {
      require(ctrl.apsp().dist == twin->controller().apsp().dist,
              "incremental APSP (hops) != full twin");
      require(ctrl.apsp_latency().dist ==
                  twin->controller().apsp_latency().dist,
              "incremental APSP (latency) != full twin");
      require(flow_tables_equal(net, twin->network()),
              "incremental flow tables != full twin");
      for (std::size_t i = 0; i < pkts.size(); i += 8) {
        pkt_scratch = pkts[i];
        net.route(pkt_scratch, ingresses[i], scratch);
        sden::Packet q = pkts[i];
        sden::RouteResult full_res;
        twin->network().route(q, ingresses[i], full_res);
        require(results_equal(scratch, full_res),
                "incremental retrieval != full twin");
      }
    }
  }
  rep.events = event_us.size();
  require(rep.events > 0, "no churn event succeeded");
  require(rep.incremental_events * 2 >= rep.events,
          "incremental path starved (mostly full fallbacks)");

  // Retract every extension still active: delivery at a switch with a
  // rewrite takes the live-pipeline fallback (which may allocate), so
  // the steady-state alloc assertion below needs a rewrite-free
  // network. Each retraction is itself a patchable event.
  for (sden::SwitchId s = 0; s < net.switch_count(); ++s) {
    std::vector<topology::ServerId> extended;
    for (const sden::RewriteEntry& rw : net.const_switch_at(s).table()
             .rewrites()) {
      extended.push_back(rw.original);
    }
    for (const topology::ServerId srv : extended) {
      require(sys.retract_range(srv).ok(), "cleanup retract_range");
      if (twin.has_value()) {
        require(twin->retract_range(srv).ok(), "twin cleanup retract");
      }
      if (ctrl.last_event_incremental()) {
        const std::vector<topology::SwitchId>& aff =
            ctrl.last_affected_switches();
        touched32.assign(aff.begin(), aff.end());
        sdp.patch_plans(touched32.data(), touched32.size());
      } else {
        sdp.recompile();
      }
    }
  }

  // Ground truth at every size: the delta-maintained state equals a
  // from-scratch recomputation of the final topology.
  {
    const graph::Graph& g = net.description().switches();
    ThreadPool& pool = global_pool();
    require(ctrl.apsp().dist ==
                graph::all_pairs_shortest_paths(g, false, &pool).dist,
            "delta-APSP (hops) drifted from fresh recompute");
    require(ctrl.apsp_latency().dist ==
                graph::all_pairs_shortest_paths(g, true, &pool).dist,
            "delta-APSP (latency) drifted from fresh recompute");
    auto fresh =
        geometry::DelaunayTriangulation::build(ctrl.space().positions());
    require(fresh.ok(), "fresh DT build");
    const geometry::DelaunayTriangulation& repaired =
        ctrl.dt().triangulation();
    require(repaired.size() == fresh.value().size(), "DT size drifted");
    for (std::size_t i = 0; i < repaired.size(); ++i) {
      require(repaired.neighbors(i) == fresh.value().neighbors(i),
              "repaired DT adjacency drifted from fresh build");
    }
  }

  // The patch_plans-maintained sharded plans vs a freshly recompiled
  // plane, every packet bit-identical.
  {
    shard::ShardedDataPlane fresh_plane(net, 4);
    std::vector<sden::RouteResult> patched(pkts.size());
    std::vector<sden::RouteResult> recompiled(pkts.size());
    sdp.replay(pkts.data(), ingresses.data(), pkts.size(), patched.data());
    fresh_plane.replay(pkts.data(), ingresses.data(), pkts.size(),
                       recompiled.data());
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      require(results_equal(patched[i], recompiled[i]),
              "patched sharded plan diverged from recompiled");
    }
  }

  // Steady-state routing through the (possibly patched) plan stays
  // alloc-free. Packets injected at a switch that left the DT (now an
  // inert transit) error out — legal, but the error Status allocates
  // its message — so the measured loop injects at live participants.
  {
    const std::vector<sden::SwitchId>& parts = ctrl.space().participants();
    std::vector<bool> is_part(net.switch_count(), false);
    for (const sden::SwitchId s : parts) is_part[s] = true;
    for (sden::SwitchId& ingress : ingresses) {
      if (!is_part[ingress]) ingress = parts[rng.next_below(parts.size())];
    }
  }
  // Doubles as the warm pass: every post-churn retrieval through the
  // patched plan must succeed and find its item before the alloc
  // assertion means anything.
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    pkt_scratch = pkts[i];
    net.route(pkt_scratch, ingresses[i], scratch);
    if (!scratch.status.ok()) {
      std::fprintf(stderr, "post-churn route error (pkt %zu): %s\n", i,
                   scratch.status.error().message.c_str());
    }
    require(scratch.status.ok(), "post-churn route errored");
    require(scratch.found, "post-churn retrieval missed");
  }
  const std::size_t a0 = g_allocs.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    pkt_scratch = pkts[i];
    net.route(pkt_scratch, ingresses[i], scratch);
  }
  const std::size_t a1 = g_allocs.load(std::memory_order_relaxed);
  rep.allocs_per_packet =
      static_cast<double>(a1 - a0) / static_cast<double>(pkts.size());
  require(a1 == a0, "steady-state route after churn allocated");

  // Full-recompute baseline: the same event class with the incremental
  // path off (full APSP + DT rebuild + reinstall), on this system so
  // the topology size matches.
  ctrl.set_incremental(false);
  double full_ms = 0;
  int full_events = 0;
  for (int k = 0; k < 2; ++k) {
    const std::vector<sden::SwitchId>& parts = ctrl.space().participants();
    sden::SwitchId u = 0;
    sden::SwitchId v = 0;
    for (int tries = 0; tries < 64; ++tries) {
      const sden::SwitchId x = parts[rng.next_below(parts.size())];
      const sden::SwitchId y = parts[rng.next_below(parts.size())];
      if (x != y &&
          net.description().switches().find_edge(x, y) == nullptr) {
        u = x;
        v = y;
        break;
      }
    }
    if (u == v) break;
    const auto t0 = std::chrono::steady_clock::now();
    require(sys.add_link(u, v).ok(), "baseline add_link");
    const auto t1 = std::chrono::steady_clock::now();
    require(sys.remove_link(u, v).ok(), "baseline remove_link");
    const auto t2 = std::chrono::steady_clock::now();
    full_ms += std::chrono::duration<double, std::milli>(t2 - t0).count();
    full_events += 2;
  }
  ctrl.set_incremental(true);
  require(full_events > 0, "no full-rebuild baseline event");
  rep.full_rebuild_ms = full_ms / full_events;

  rep.event_us_p50 = percentile(event_us, 0.50);
  rep.event_us_p99 = percentile(event_us, 0.99);
  rep.speedup =
      rep.full_rebuild_ms * 1000.0 / std::max(rep.event_us_p50, 1e-9);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  ThreadPool serial(1);
  ThreadPool& pool = global_pool();
  const auto threads = static_cast<double>(pool.thread_count());

  bench::print_header(
      "Control plane", "APSP / C-regulation / nearest-site / churn scaling",
      "parallel and incremental output identical to serial/full rebuild");
  std::printf("pool threads: %zu (GRED_THREADS or hardware)\n\n",
              pool.thread_count());

  // --- APSP: 400-switch Waxman, both tables like recompute_apsp. ---
  const topology::EdgeNetwork net = bench::make_waxman_network(400, 1, 3, 424);
  const graph::Graph& g = net.switches();
  graph::ApspResult serial_hops, serial_lat, pool_hops, pool_lat;
  const double apsp_serial_ms = time_ms([&] {
    serial_hops = graph::all_pairs_shortest_paths(g, false, &serial);
    serial_lat = graph::all_pairs_shortest_paths(g, true, &serial);
  });
  const double apsp_pool_ms = time_ms([&] {
    pool_hops = graph::all_pairs_shortest_paths(g, false, &pool);
    pool_lat = graph::all_pairs_shortest_paths(g, true, &pool);
  });
  require(serial_hops.dist == pool_hops.dist, "unweighted APSP");
  require(serial_lat.dist == pool_lat.dist, "weighted APSP");
  const double apsp_speedup = apsp_serial_ms / apsp_pool_ms;
  std::printf("APSP (400 switches, both tables): %.1f ms serial, %.1f ms "
              "pooled, speedup %.2fx\n",
              apsp_serial_ms, apsp_pool_ms, apsp_speedup);

  // --- C-regulation: 400 sites, 20 iterations, 20k samples/iter. ---
  Rng site_rng(77);
  std::vector<geometry::Point2D> sites;
  for (int i = 0; i < 400; ++i) {
    sites.push_back({site_rng.next_double(), site_rng.next_double()});
  }
  geometry::CvtOptions cvt;
  cvt.samples_per_iteration = 20000;
  cvt.max_iterations = 20;
  geometry::CvtResult serial_cvt, pool_cvt;
  cvt.pool = &serial;
  const double cvt_serial_ms = time_ms([&] {
    Rng rng(7);
    serial_cvt = geometry::c_regulation(sites, cvt, rng);
  });
  cvt.pool = &pool;
  const double cvt_pool_ms = time_ms([&] {
    Rng rng(7);
    pool_cvt = geometry::c_regulation(sites, cvt, rng);
  });
  require(serial_cvt.sites == pool_cvt.sites &&
              serial_cvt.energy_history == pool_cvt.energy_history,
          "C-regulation");
  const double cvt_speedup = cvt_serial_ms / cvt_pool_ms;
  std::printf("C-regulation (400 sites, 20 iters): %.2f ms/iter serial, "
              "%.2f ms/iter pooled, speedup %.2fx\n",
              cvt_serial_ms / 20.0, cvt_pool_ms / 20.0, cvt_speedup);

  // --- Nearest-site: grid index vs brute-force scan. ---
  const geometry::Rect domain;
  const geometry::SiteGrid grid(serial_cvt.sites, domain);
  const std::size_t queries = 200000;
  Rng qrng(13);
  std::vector<geometry::Point2D> pts;
  pts.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    pts.push_back({qrng.next_double(), qrng.next_double()});
  }
  std::size_t sink_grid = 0, sink_brute = 0;
  const double grid_ms = time_ms([&] {
    std::size_t acc = 0;
    for (const auto& p : pts) acc += grid.nearest(p);
    sink_grid = acc;
  });
  const double brute_ms = time_ms([&] {
    std::size_t acc = 0;
    for (const auto& p : pts) acc += geometry::nearest_site(serial_cvt.sites, p);
    sink_brute = acc;
  });
  require(sink_grid == sink_brute, "nearest-site lookup");
  const double grid_qps = static_cast<double>(queries) / (grid_ms / 1000.0);
  const double brute_qps = static_cast<double>(queries) / (brute_ms / 1000.0);
  std::printf("nearest-site (400 sites, 200k queries): %.2fM/s grid, "
              "%.2fM/s brute force, speedup %.1fx\n",
              grid_qps / 1e6, brute_qps / 1e6, grid_qps / brute_qps);

  // --- Churn sweep: per-event incremental cost vs full recompute,
  // identity asserted before any number is reported (see run_churn). ---
  std::vector<std::size_t> churn_sizes = {256, 1024, 4096};
  if (smoke) churn_sizes = {256};
  std::vector<ChurnReport> churn;
  std::printf("\nchurn sweep (GRED_INCREMENTAL on, identity-checked):\n");
  for (const std::size_t cn : churn_sizes) {
    churn.push_back(run_churn(cn, smoke));
    const ChurnReport& r = churn.back();
    std::printf("  n=%-5zu %zu/%zu events incremental, p50 %.0f us, "
                "p99 %.0f us, full rebuild %.1f ms, speedup %.1fx, "
                "allocs/pkt %.2f\n",
                r.n, r.incremental_events, r.events, r.event_us_p50,
                r.event_us_p99, r.full_rebuild_ms, r.speedup,
                r.allocs_per_packet);
  }

  // --- Phase timers: one full control-plane build with the obs layer
  // on. The per-phase histograms (APSP, MDS embed, C-regulation, DT
  // build, install) come straight from the instrumented library, so
  // this section also proves the timers fire where DESIGN.md says. ---
  obs::registry().reset_values();
  obs::set_enabled(true);
  {
    const topology::EdgeNetwork obs_net =
        bench::make_waxman_network(200, 2, 3, 777);
    auto sys = core::GredSystem::create(obs_net, bench::gred_options(30));
    require(sys.ok(), "GredSystem::create (obs section)");
  }
  obs::set_enabled(false);
  std::printf("\ncontrol-plane phases (200 switches, obs on):\n");
  const obs::Registry::Snapshot phases = obs::registry().snapshot();
  for (const auto& [name, hist] : phases.histograms) {
    std::printf("  %-28s %8.2f ms (runs %llu)\n", name.c_str(), hist.sum,
                static_cast<unsigned long long>(hist.count));
  }
  obs::ExportSources phase_sources;
  phase_sources.registry = &obs::registry();
  require(obs::write_text_file("BENCH_control_plane_obs.json",
                               obs::to_json(phase_sources))
              .ok(),
          "write BENCH_control_plane_obs.json");

  std::vector<std::pair<std::string, double>> fields = {
      {"threads", threads},
      {"apsp_ms_threads1", apsp_serial_ms},
      {"apsp_ms", apsp_pool_ms},
      {"apsp_speedup", apsp_speedup},
      {"cvt_ms_per_iter_threads1", cvt_serial_ms / 20.0},
      {"cvt_ms_per_iter", cvt_pool_ms / 20.0},
      {"cvt_speedup", cvt_speedup},
      {"grid_lookups_per_sec", grid_qps},
      {"brute_lookups_per_sec", brute_qps},
      {"lookup_speedup", grid_qps / brute_qps}};
  double max_churn_allocs = 0;
  for (const ChurnReport& r : churn) {
    const std::string p = "churn" + std::to_string(r.n) + "_";
    fields.emplace_back(p + "event_us_p50", r.event_us_p50);
    fields.emplace_back(p + "event_us_p99", r.event_us_p99);
    fields.emplace_back(p + "full_rebuild_ms", r.full_rebuild_ms);
    fields.emplace_back(p + "speedup", r.speedup);
    fields.emplace_back(p + "allocs_per_packet", r.allocs_per_packet);
    max_churn_allocs = std::max(max_churn_allocs, r.allocs_per_packet);
  }
  // Headline keys (largest size in the sweep). Every identity check
  // aborts the bench on divergence, so reaching this line IS the
  // incremental == full assertion.
  fields.emplace_back("churn_event_us_p50", churn.back().event_us_p50);
  fields.emplace_back("churn_event_us_p99", churn.back().event_us_p99);
  fields.emplace_back("incremental_speedup", churn.back().speedup);
  fields.emplace_back("incremental_identical", 1.0);
  fields.emplace_back("churn_allocs_per_packet", max_churn_allocs);
  bench::write_json("BENCH_control_plane.json", fields);
  std::printf("\nwrote BENCH_control_plane.json\n");
  std::printf("wrote BENCH_control_plane_obs.json (phase timings)\n");
  return 0;
}
