// Fig. 7(a): routing stretch of GRED vs GRED-NoCVT on the 6-switch /
// 12-server P4 testbed prototype (Section VII-A). The paper reports
// both variants close to the optimal stretch of 1.
#include <cstdio>

#include "bench_util.hpp"
#include "topology/presets.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 7(a)", "testbed routing stretch (6 P4 switches, 12 servers)",
      "average stretch of GRED and GRED-NoCVT both close to 1");

  Table table({"requests", "GRED stretch (90% CI)",
               "GRED-NoCVT stretch (90% CI)"});

  for (std::size_t requests : {100u, 200u, 500u, 1000u}) {
    auto gred_sys = core::GredSystem::create(
        topology::uniform_edge_network(topology::testbed6(), 2),
        bench::gred_options(50));
    auto nocvt_sys = core::GredSystem::create(
        topology::uniform_edge_network(topology::testbed6(), 2),
        bench::nocvt_options());
    if (!gred_sys.ok() || !nocvt_sys.ok()) {
      std::fprintf(stderr, "system creation failed\n");
      return 1;
    }
    const Summary gred = summarize(
        bench::gred_stretch_samples(gred_sys.value(), requests, requests));
    const Summary nocvt = summarize(
        bench::gred_stretch_samples(nocvt_sys.value(), requests, requests));
    table.add_row({std::to_string(requests), bench::mean_ci_cell(gred),
                   bench::mean_ci_cell(nocvt)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
