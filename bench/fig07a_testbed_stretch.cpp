// Fig. 7(a): routing stretch of GRED vs GRED-NoCVT on the 6-switch /
// 12-server P4 testbed prototype (Section VII-A). The paper reports
// both variants close to the optimal stretch of 1.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "topology/presets.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 7(a)", "testbed routing stretch (6 P4 switches, 12 servers)",
      "average stretch of GRED and GRED-NoCVT both close to 1");

  Table table({"requests", "GRED stretch (90% CI)",
               "GRED-NoCVT stretch (90% CI)"});

  const std::vector<std::size_t> request_counts = {100, 200, 500, 1000};
  std::vector<std::vector<std::string>> rows(request_counts.size());
  bench::parallel_trials(request_counts.size(), [&](std::size_t k) {
    const std::size_t requests = request_counts[k];
    auto gred_sys = core::GredSystem::create(
        topology::uniform_edge_network(topology::testbed6(), 2),
        bench::gred_options(50));
    auto nocvt_sys = core::GredSystem::create(
        topology::uniform_edge_network(topology::testbed6(), 2),
        bench::nocvt_options());
    if (!gred_sys.ok() || !nocvt_sys.ok()) {
      std::fprintf(stderr, "system creation failed\n");
      std::abort();
    }
    const Summary gred = summarize(
        bench::gred_stretch_samples(gred_sys.value(), requests, requests));
    const Summary nocvt = summarize(
        bench::gred_stretch_samples(nocvt_sys.value(), requests, requests));
    rows[k] = {std::to_string(requests), bench::mean_ci_cell(gred),
               bench::mean_ci_cell(nocvt)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
