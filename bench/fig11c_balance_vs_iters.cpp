// Fig. 11(c): load balance (max/avg) vs the number of C-regulation
// iterations T, with 100,000 items (Section VII-E3). Chord and
// GRED-NoCVT are independent of T (flat lines). Expectation: GRED's
// max/avg decreases as T grows, dropping below 2 for T >= 20 and
// plateauing around T = 70.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 11(c)", "load balance max/avg vs C-regulation iterations T",
      "GRED falls with T, < 2 beyond T=20, plateau near T=70; Chord and "
      "GRED-NoCVT flat");

  const std::size_t items = 100000;
  const auto ids = bench::make_ids(items, 13);
  const topology::EdgeNetwork net =
      bench::make_waxman_network(100, 10, 3, 7000);

  auto ring = chord::ChordRing::build(net);
  auto nocvt = core::GredSystem::create(net, bench::nocvt_options());
  if (!ring.ok() || !nocvt.ok()) return 1;
  const double chord_bal =
      core::load_balance(bench::chord_loads(ring.value(), net, ids))
          .max_over_avg;
  const double nocvt_bal =
      core::load_balance(bench::gred_loads(nocvt.value(), ids))
          .max_over_avg;

  Table table({"T", "GRED", "GRED-NoCVT", "Chord"});
  const std::vector<std::size_t> iters = {0,  10, 20, 30, 40, 50,
                                          60, 70, 80, 90, 100};
  std::vector<std::vector<std::string>> rows(iters.size());
  bench::parallel_trials(iters.size(), [&](std::size_t k) {
    const std::size_t t = iters[k];
    core::VirtualSpaceOptions opt = bench::gred_options(t);
    if (t == 0) opt.use_cvt = false;
    auto sys = core::GredSystem::create(net, opt);
    if (!sys.ok()) std::abort();
    const double bal =
        core::load_balance(bench::gred_loads(sys.value(), ids))
            .max_over_avg;
    rows[k] = {std::to_string(t), Table::fmt(bal), Table::fmt(nocvt_bal),
               Table::fmt(chord_bal)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
