// Disaster bench: correlated region kills vs the replica placement
// policy. For each replication factor k in {1, 2, 3} the same Waxman
// network is run twice — naive nearest-k homes vs region-diverse
// homes (a G x G partition of the virtual space, kill box aligned
// with the replication regions) — under an identical seeded region
// kill that destroys every switch in one box of the virtual space.
//
// Reported per (k, variant), all under the same disaster timeline:
//
//   RPO  items_lost           items destroyed outright (no surviving
//                             copy at any point of the timeline)
//        items_unavailable    items unreachable at some point (the
//                             transient superset of items_lost)
//   RTO  rto_events           event-clock steps from the kill until
//                             the last affected item was back at full
//                             factor and routable (0 = never degraded)
//   survivor_delay_p99_ms     p99 modeled response delay of successful
//                             fallback retrievals during the timeline:
//                             backoff_ms + path cost x 0.05 ms/hop +
//                             0.20 ms service (DelayModelOptions
//                             defaults)
//   success_rate              found / issued retrievals (lost items
//                             drag this down for the naive variants)
//
// Emits BENCH_disaster.json and hard-fails unless region-diverse
// k = 2 loses strictly fewer items than naive nearest-k — and in fact
// loses ZERO, since the kill box is exactly one replication region —
// and the healthy fast path stays allocation-free.
//
// `--smoke` shrinks the topology and round counts for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "crypto/data_key.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_session.hpp"
#include "sden/network.hpp"

using namespace gred;

// Global allocation counter for the zero-steady-state-alloc assertion.
static std::size_t g_allocs = 0;
void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_disaster: check failed: %s\n", what);
    std::abort();
  }
}

// Delay model constants, matching DelayModelOptions defaults.
constexpr double kLinkLatencyMs = 0.05;
constexpr double kServiceTimeMs = 0.20;

/// Steady-state fast-path throughput over the prepared packets, with
/// the allocation counter checked across the timed region.
double routed_pps(sden::SdenNetwork& network,
                  const std::vector<sden::Packet>& pkts,
                  const std::vector<sden::SwitchId>& ingresses,
                  std::size_t rounds, double* allocs_per_packet) {
  sden::RouteResult scratch;
  sden::Packet pkt_scratch;
  // Warm-up: sizes scratch capacity so the timed region is steady.
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    pkt_scratch = pkts[i];
    network.route(pkt_scratch, ingresses[i], scratch);
    require(scratch.status.ok() && scratch.found, "warm-up route");
  }
  const std::size_t a0 = g_allocs;
  const double t0 = now_s();
  std::size_t total = 0;
  for (std::size_t rd = 0; rd < rounds; ++rd) {
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      pkt_scratch = pkts[i];
      network.route(pkt_scratch, ingresses[i], scratch);
      ++total;
    }
  }
  const double elapsed = now_s() - t0;
  *allocs_per_packet =
      static_cast<double>(g_allocs - a0) / static_cast<double>(total);
  return static_cast<double>(total) / elapsed;
}

struct VariantResult {
  std::size_t items_lost = 0;
  std::size_t items_unavailable = 0;
  std::size_t rto_events = 0;
  double survivor_delay_p99_ms = 0.0;
  double success_rate = 0.0;
  std::size_t retrievals = 0;
  std::size_t kill_members = 0;
  std::size_t kill_at = 0;
};

struct RunConfig {
  std::size_t switches = 0;
  std::size_t items = 0;
  std::size_t batch = 0;  ///< fallback retrievals per fault deadline
  std::size_t region_grid = 3;
  std::uint64_t topo_seed = 0;
  std::uint64_t plan_seed = 0;
};

/// One full disaster timeline on a fresh system. Both variants get
/// identical topologies and therefore identical CVT embeddings, so the
/// seeded plan kills the exact same region members either way — the
/// only difference under test is where the replicas live.
VariantResult run_variant(const RunConfig& cfg, std::size_t k,
                          bool diverse) {
  const topology::EdgeNetwork desc =
      bench::make_waxman_network(cfg.switches, 4, 3, cfg.topo_seed);
  auto built = core::GredSystem::create(desc, bench::gred_options(30));
  require(built.ok(), "GredSystem::create");
  core::GredSystem& sys = built.value();
  core::ReplicationOptions ropts;
  ropts.factor = k;
  ropts.region_diverse = diverse;
  ropts.region_grid = cfg.region_grid;
  require(sys.enable_replication(ropts).ok(), "enable_replication");

  Rng rng(0xD15A57E8u + k);
  std::vector<std::string> ids;
  ids.reserve(cfg.items);
  for (std::size_t i = 0; i < cfg.items; ++i) {
    const std::string id = "dis-" + std::to_string(i);
    require(sys.place(id, "payload-" + id, rng.next_below(cfg.switches)).ok(),
            "place");
    ids.push_back(id);
  }

  // One box kill aligned with the replication regions.
  fault::DisasterPlanOptions dopt;
  dopt.region_kills = 1;
  dopt.partitions = 0;
  dopt.region_shape = fault::RegionShape::kBox;
  dopt.box_grid = cfg.region_grid;
  dopt.schedule_length = 80;
  dopt.stale_window = 12;
  dopt.seed = cfg.plan_seed;
  auto plan = fault::FaultPlan::generate_disasters(
      sys.network().description(), sys.controller().space().participants(),
      sys.controller().space().positions(), dopt);
  require(plan.ok(), "FaultPlan::generate_disasters");
  require(plan.value().count(fault::FaultKind::kRegionKill) == 1,
          "plan holds one region kill");

  VariantResult out;
  std::set<std::size_t> deadlines;
  for (const auto& e : plan.value().events()) {
    out.kill_members = e.members.size();
    out.kill_at = e.at_event;
    deadlines.insert(e.at_event);
    deadlines.insert(e.repair_at);
  }
  require(out.kill_members >= 2, "kill box too small to be correlated");

  fault::FaultSession session(sys, std::move(plan).value());
  session.enable_recovery_tracking();
  core::RetryPolicy policy;
  policy.max_attempts = 4;

  auto alive_ingress = [&]() -> sden::SwitchId {
    const auto& parts = sys.controller().space().participants();
    for (;;) {
      const sden::SwitchId s = parts[rng.next_below(parts.size())];
      if (!session.state().switch_is_down(s)) return s;
    }
  };

  std::size_t found = 0;
  std::vector<double> delays;
  delays.reserve(deadlines.size() * cfg.batch);
  for (const std::size_t t : deadlines) {
    require(session.advance(t).ok(), "FaultSession::advance");
    for (std::size_t i = 0; i < cfg.batch; ++i) {
      const std::string& id = ids[rng.next_below(ids.size())];
      auto r = sys.retrieve_with_fallback(id, alive_ingress(), policy);
      require(r.ok(), "fallback retrieval returned unclassified error");
      ++out.retrievals;
      if (!r.value().found) continue;
      ++found;
      delays.push_back(r.value().backoff_ms +
                       r.value().report.selected_cost * kLinkLatencyMs +
                       kServiceTimeMs);
    }
  }
  require(session.finish().ok(), "FaultSession::finish");
  require(!session.state().any(), "fault state not empty after finish");

  out.items_lost = session.items_lost();
  out.items_unavailable = session.items_ever_unavailable();
  for (const auto& [id, rec] : session.recovery()) {
    if (rec.restored_at == fault::RecoveryRecord::kNever) continue;
    if (rec.restored_at <= out.kill_at) continue;
    out.rto_events =
        std::max(out.rto_events, rec.restored_at - out.kill_at);
  }
  out.survivor_delay_p99_ms = summarize(std::move(delays)).p99;
  out.success_rate =
      static_cast<double>(found) / static_cast<double>(out.retrievals);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header(
      "Disaster", "correlated region kill vs replica placement policy",
      "region-diverse k = 2 loses zero items; naive nearest-k loses data");

  RunConfig cfg;
  cfg.switches = smoke ? 48 : 96;
  cfg.items = smoke ? 300 : 900;
  cfg.batch = smoke ? 40 : 120;
  cfg.region_grid = 3;
  cfg.topo_seed = 9300 + cfg.switches;
  cfg.plan_seed = 20260809;

  // --- Healthy fast path on the region-diverse k = 2 deployment: the
  // disaster machinery must cost nothing before the disaster. ---
  double nofault_pps = 0.0;
  double nofault_allocs = 0.0;
  {
    const topology::EdgeNetwork desc =
        bench::make_waxman_network(cfg.switches, 4, 3, cfg.topo_seed);
    auto built = core::GredSystem::create(desc, bench::gred_options(30));
    require(built.ok(), "GredSystem::create");
    core::GredSystem& sys = built.value();
    core::ReplicationOptions ropts;
    ropts.factor = 2;
    ropts.region_diverse = true;
    ropts.region_grid = cfg.region_grid;
    require(sys.enable_replication(ropts).ok(), "enable_replication");
    Rng rng(41);
    std::vector<sden::Packet> pkts;
    std::vector<sden::SwitchId> ingresses;
    for (std::size_t i = 0; i < cfg.items; ++i) {
      const std::string id = "dis-" + std::to_string(i);
      require(sys.place(id, "payload-" + id, rng.next_below(cfg.switches)).ok(),
              "place");
      sden::Packet p;
      p.type = sden::PacketType::kRetrieval;
      p.data_id = id;
      const crypto::DataKey key(id);
      p.target = {key.position().x, key.position().y};
      p.set_key(key);
      pkts.push_back(p);
      ingresses.push_back(rng.next_below(cfg.switches));
    }
    nofault_pps = routed_pps(sys.network(), pkts, ingresses,
                             smoke ? 5 : 40, &nofault_allocs);
    require(nofault_allocs == 0.0,
            "healthy fast path performed a heap allocation");
    std::printf("healthy: %9.0f pkts/s, allocs/pkt %.2f\n\n", nofault_pps,
                nofault_allocs);
  }

  // --- The k sweep: same topology, same kill, two placement policies.
  std::vector<std::pair<std::string, double>> fields = {
      {"switches", static_cast<double>(cfg.switches)},
      {"items", static_cast<double>(cfg.items)},
      {"region_grid", static_cast<double>(cfg.region_grid)},
      {"nofault_pkts_per_sec", nofault_pps},
      {"nofault_allocs_per_packet", nofault_allocs},
  };
  VariantResult naive2;
  VariantResult diverse2;
  std::printf("%-14s %5s %5s %5s %5s %9s %8s\n", "variant", "k", "lost",
              "unavl", "rto", "p99(ms)", "success");
  for (std::size_t k = 1; k <= 3; ++k) {
    for (const bool diverse : {false, true}) {
      const VariantResult r = run_variant(cfg, k, diverse);
      const std::string tag =
          "k" + std::to_string(k) + (diverse ? "_diverse" : "_naive");
      std::printf("%-14s %5zu %5zu %5zu %5zu %9.3f %8.4f\n",
                  diverse ? "region-diverse" : "naive", k, r.items_lost,
                  r.items_unavailable, r.rto_events, r.survivor_delay_p99_ms,
                  r.success_rate);
      fields.emplace_back(tag + "_items_lost",
                          static_cast<double>(r.items_lost));
      fields.emplace_back(tag + "_items_unavailable",
                          static_cast<double>(r.items_unavailable));
      fields.emplace_back(tag + "_rto_events",
                          static_cast<double>(r.rto_events));
      fields.emplace_back(tag + "_survivor_delay_p99_ms",
                          r.survivor_delay_p99_ms);
      fields.emplace_back(tag + "_success_rate", r.success_rate);
      if (k == 2 && diverse) diverse2 = r;
      if (k == 2 && !diverse) naive2 = r;
      if (k == 2 && !diverse) {
        fields.emplace_back("region_members_killed",
                            static_cast<double>(r.kill_members));
        fields.emplace_back("kill_at_event", static_cast<double>(r.kill_at));
      }
    }
  }

  // The tentpole claim: with the kill box equal to one replication
  // region, region-diverse k = 2 keeps a copy of every item outside
  // the box — zero loss — while naive nearest-2 homes co-locate and
  // lose whatever lived only there.
  require(diverse2.items_lost < naive2.items_lost,
          "region-diverse k=2 must lose strictly fewer items than naive");
  require(diverse2.items_lost == 0, "region-diverse k=2 lost items");
  std::printf("\nk=2: naive lost %zu, region-diverse lost %zu\n",
              naive2.items_lost, diverse2.items_lost);

  bench::write_json("BENCH_disaster.json", fields);
  std::printf("wrote BENCH_disaster.json\n");
  return 0;
}
