// Fig. 9(a): routing stretch vs network size — Chord vs GRED vs
// GRED-NoCVT. Waxman topologies, 10 edge servers per switch, 100 data
// items per point, each with a random access point; error bars are 90%
// CIs (Section VII-B/C1). Expectation: Chord > 3.5 everywhere; both
// GRED variants < 1.5 (GRED uses < 30% of Chord's routing cost).
#include <cstdio>

#include "bench_util.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 9(a)", "routing stretch vs number of switches",
      "Chord > 3.5 and growing; GRED and GRED-NoCVT < 1.5, flat");

  Table table({"switches", "servers", "Chord", "GRED", "GRED-NoCVT"});
  for (std::size_t n : {20u, 50u, 100u, 150u, 200u}) {
    const topology::EdgeNetwork net =
        bench::make_waxman_network(n, 10, 3, 1000 + n);

    auto gred_sys = core::GredSystem::create(net, bench::gred_options(50));
    auto nocvt_sys = core::GredSystem::create(net, bench::nocvt_options());
    auto ring = chord::ChordRing::build(net);
    if (!gred_sys.ok() || !nocvt_sys.ok() || !ring.ok()) return 1;

    const Summary chord_s =
        summarize(bench::chord_stretch_samples(ring.value(), net, 100, n));
    const Summary gred_s =
        summarize(bench::gred_stretch_samples(gred_sys.value(), 100, n));
    const Summary nocvt_s = summarize(
        bench::gred_stretch_samples(nocvt_sys.value(), 100, n + 1));

    table.add_row({std::to_string(n), std::to_string(net.server_count()),
                   bench::mean_ci_cell(chord_s), bench::mean_ci_cell(gred_s),
                   bench::mean_ci_cell(nocvt_s)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
