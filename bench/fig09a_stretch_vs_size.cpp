// Fig. 9(a): routing stretch vs network size — Chord vs GRED vs
// GRED-NoCVT. Waxman topologies, 10 edge servers per switch, 100 data
// items per point, each with a random access point; error bars are 90%
// CIs (Section VII-B/C1). Expectation: Chord > 3.5 everywhere; both
// GRED variants < 1.5 (GRED uses < 30% of Chord's routing cost).
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 9(a)", "routing stretch vs number of switches",
      "Chord > 3.5 and growing; GRED and GRED-NoCVT < 1.5, flat");

  Table table({"switches", "servers", "Chord", "GRED", "GRED-NoCVT"});
  const std::vector<std::size_t> sizes = {20, 50, 100, 150, 200};
  std::vector<std::vector<std::string>> rows(sizes.size());
  bench::parallel_trials(sizes.size(), [&](std::size_t k) {
    const std::size_t n = sizes[k];
    const topology::EdgeNetwork net =
        bench::make_waxman_network(n, 10, 3, 1000 + n);

    auto gred_sys = core::GredSystem::create(net, bench::gred_options(50));
    auto nocvt_sys = core::GredSystem::create(net, bench::nocvt_options());
    auto ring = chord::ChordRing::build(net);
    if (!gred_sys.ok() || !nocvt_sys.ok() || !ring.ok()) std::abort();

    const Summary chord_s =
        summarize(bench::chord_stretch_samples(ring.value(), net, 100, n));
    const Summary gred_s =
        summarize(bench::gred_stretch_samples(gred_sys.value(), 100, n));
    const Summary nocvt_s = summarize(
        bench::gred_stretch_samples(nocvt_sys.value(), 100, n + 1));

    rows[k] = {std::to_string(n), std::to_string(net.server_count()),
               bench::mean_ci_cell(chord_s), bench::mean_ci_cell(gred_s),
               bench::mean_ci_cell(nocvt_s)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
