#include "bench_util.hpp"

#include <cstdio>

#include "common/thread_pool.hpp"

namespace gred::bench {

topology::EdgeNetwork make_waxman_network(std::size_t switches,
                                          std::size_t servers_per_switch,
                                          std::size_t min_degree,
                                          std::uint64_t seed) {
  Rng rng(seed);
  topology::WaxmanOptions opt;
  opt.node_count = switches;
  opt.min_degree = min_degree;
  auto topo = topology::generate_waxman(opt, rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology generation failed: %s\n",
                 topo.error().to_string().c_str());
    std::abort();
  }
  return topology::uniform_edge_network(std::move(topo).value().graph,
                                        servers_per_switch);
}

std::vector<std::string> make_ids(std::size_t count, std::uint64_t trial) {
  std::vector<std::string> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back("data-" + std::to_string(trial) + "-" + std::to_string(i));
  }
  return ids;
}

core::VirtualSpaceOptions gred_options(std::size_t cvt_iterations) {
  core::VirtualSpaceOptions opt;
  opt.use_cvt = true;
  opt.cvt_iterations = cvt_iterations;
  opt.cvt_samples = 1000;  // the paper's sampling density
  return opt;
}

core::VirtualSpaceOptions nocvt_options() {
  core::VirtualSpaceOptions opt;
  opt.use_cvt = false;
  return opt;
}

std::vector<double> gred_stretch_samples(core::GredSystem& sys,
                                         std::size_t items,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t switches = sys.network().switch_count();
  std::vector<double> samples;
  samples.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id = "stretch-" + std::to_string(seed) + "-" +
                           std::to_string(i);
    auto r = sys.place(id, "", rng.next_below(switches));
    if (!r.ok()) {
      std::fprintf(stderr, "placement failed: %s\n",
                   r.error().to_string().c_str());
      std::abort();
    }
    samples.push_back(r.value().stretch);
  }
  return samples;
}

std::vector<double> chord_stretch_samples(const chord::ChordRing& ring,
                                          const topology::EdgeNetwork& net,
                                          std::size_t items,
                                          std::uint64_t seed) {
  Rng rng(seed ^ 0xc402d);
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());
  std::vector<double> samples;
  samples.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id = "stretch-" + std::to_string(seed) + "-" +
                           std::to_string(i);
    const topology::ServerId origin = rng.next_below(net.server_count());
    samples.push_back(
        chord::measure_lookup(ring, net, apsp, origin,
                              crypto::DataKey(id).prefix64())
            .stretch);
  }
  return samples;
}

std::vector<std::size_t> gred_loads(core::GredSystem& sys,
                                    const std::vector<std::string>& ids) {
  std::vector<std::size_t> loads(sys.network().server_count(), 0);
  for (const std::string& id : ids) {
    const auto placement = sys.controller().expected_placement(
        sys.network(), crypto::DataKey(id));
    if (placement.ok()) ++loads[placement.value().server];
  }
  return loads;
}

std::vector<std::size_t> chord_loads(const chord::ChordRing& ring,
                                     const topology::EdgeNetwork& net,
                                     const std::vector<std::string>& ids) {
  std::vector<chord::RingId> keys;
  keys.reserve(ids.size());
  for (const std::string& id : ids) {
    keys.push_back(crypto::DataKey(id).prefix64());
  }
  return chord::chord_key_loads(ring, net, keys);
}

void parallel_trials(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(0, count, 1,
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i) fn(i);
                             });
}

void write_json(const std::string& path,
                const std::vector<std::pair<std::string, double>>& fields) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6g%s\n", fields[i].first.c_str(),
                 fields[i].second, i + 1 < fields.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

std::string mean_ci_cell(const Summary& s, int precision) {
  return Table::fmt(s.mean, precision) + " +/- " +
         Table::fmt(s.ci90, precision);
}

void print_header(const std::string& fig, const std::string& what,
                  const std::string& paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", fig.c_str(), what.c_str());
  std::printf("Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace gred::bench
