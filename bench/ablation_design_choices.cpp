// Ablations for the design choices DESIGN.md calls out:
//   A. C-regulation sampling density (paper: 1000 samples/iteration)
//   B. Embedding dimension (paper: 2-D) — MDS stress at m = 1, 2, 3
//   C. Chord virtual nodes — balance vs routing-state trade-off
//   D. Replication degree — read locality (mean retrieval hops)
#include <cstdio>

#include "bench_util.hpp"
#include "kad/kademlia.hpp"
#include "linalg/mds.hpp"
#include "topology/presets.hpp"

using namespace gred;

namespace {

void ablate_cvt_samples() {
  std::printf("\n[A] C-regulation sampling density (T = 50, 100k items, "
              "60 switches x 10 servers)\n");
  const auto ids = bench::make_ids(100000, 21);
  Table table({"samples/iter", "max/avg", "Jain fairness"});
  for (std::size_t samples : {100u, 500u, 1000u, 5000u, 20000u}) {
    const topology::EdgeNetwork net =
        bench::make_waxman_network(60, 10, 3, 8000);
    core::VirtualSpaceOptions opt = bench::gred_options(50);
    opt.cvt_samples = samples;
    auto sys = core::GredSystem::create(net, opt);
    if (!sys.ok()) std::abort();
    const auto report =
        core::load_balance(bench::gred_loads(sys.value(), ids));
    table.add_row({std::to_string(samples), Table::fmt(report.max_over_avg),
                   Table::fmt(report.jain)});
  }
  std::printf("%s", table.to_string().c_str());
}

void ablate_embedding_dimension() {
  std::printf("\n[B] Embedding dimension: Kruskal stress of the M-position "
              "embedding (100-switch Waxman)\n");
  const topology::EdgeNetwork net =
      bench::make_waxman_network(100, 10, 3, 8100);
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());
  linalg::Matrix dist(100, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 100; ++j) dist(i, j) = apsp.dist(i, j);
  }
  Table table({"dimensions m", "Kruskal stress-1"});
  for (std::size_t m : {1u, 2u, 3u, 4u}) {
    auto mds = linalg::classical_mds(dist, m);
    if (!mds.ok()) std::abort();
    table.add_row({std::to_string(m), Table::fmt(mds.value().stress, 4)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("The paper routes on m = 2: the DT/greedy machinery needs a "
              "plane, and stress improves little beyond 2.\n");
}

void ablate_chord_virtual_nodes() {
  std::printf("\n[C] Chord virtual nodes: balance vs routing state "
              "(50 switches x 10 servers, 100k items)\n");
  const topology::EdgeNetwork net =
      bench::make_waxman_network(50, 10, 3, 8200);
  const auto ids = bench::make_ids(100000, 22);
  Table table({"virtual nodes", "max/avg", "finger entries/server"});
  for (unsigned v : {1u, 2u, 4u, 8u, 16u}) {
    chord::ChordOptions opt;
    opt.virtual_nodes = v;
    auto ring = chord::ChordRing::build(net, opt);
    if (!ring.ok()) std::abort();
    const double bal =
        core::load_balance(bench::chord_loads(ring.value(), net, ids))
            .max_over_avg;
    double fingers = 0;
    for (topology::ServerId s = 0; s < net.server_count(); ++s) {
      fingers += static_cast<double>(ring.value().finger_entries(s));
    }
    table.add_row({std::to_string(v), Table::fmt(bal),
                   Table::fmt(fingers / net.server_count(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("Chord can buy balance with virtual nodes but pays in routing "
              "state — the trade-off Section II-A cites.\n");
}

void ablate_replication() {
  std::printf("\n[D] Replication degree: nearest-replica read locality "
              "(8x8 grid, 2 servers/switch)\n");
  Table table({"copies k", "mean retrieval hops"});
  for (unsigned k : {1u, 2u, 3u, 4u, 6u}) {
    const topology::EdgeNetwork net = topology::uniform_edge_network(
        topology::grid(8, 8), 2);
    auto sys = core::GredSystem::create(net, bench::gred_options(30));
    if (!sys.ok()) std::abort();
    Rng rng(23 + k);
    RunningStats hops;
    for (int i = 0; i < 50; ++i) {
      const std::string id = "ritem-" + std::to_string(i);
      if (!sys.value().place_replicated(id, "v", k, 0).ok()) std::abort();
      for (int reads = 0; reads < 4; ++reads) {
        auto r = sys.value().retrieve_nearest_replica(
            id, k, rng.next_below(64));
        if (!r.ok() || !r.value().route.found) std::abort();
        hops.add(static_cast<double>(r.value().selected_hops));
      }
    }
    table.add_row({std::to_string(k), Table::fmt(hops.mean(), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("More copies cut read distance (Section VI): the virtual-space "
              "distance picks the closest replica without a directory.\n");
}

void ablate_latency_embedding() {
  std::printf("\n[E] Hop-count vs latency-weighted embedding on a "
              "latency-weighted Waxman network (80 switches)\n");
  Rng rng(31);
  topology::WaxmanOptions wopt;
  wopt.node_count = 80;
  wopt.min_degree = 3;
  wopt.latency_weights = true;  // link weight = geographic latency (ms)
  auto topo = topology::generate_waxman(wopt, rng);
  if (!topo.ok()) std::abort();
  const topology::EdgeNetwork net = topology::uniform_edge_network(
      std::move(topo).value().graph, 10);

  Table table({"embedding", "hop stretch", "latency stretch"});
  for (bool weighted : {false, true}) {
    core::VirtualSpaceOptions opt = bench::gred_options(50);
    opt.weighted_embedding = weighted;
    auto sys = core::GredSystem::create(net, opt);
    if (!sys.ok()) std::abort();
    Rng arng(77);
    RunningStats hop, lat;
    for (int i = 0; i < 200; ++i) {
      auto r = sys.value().place("lat-" + std::to_string(i), "",
                                 arng.next_below(80));
      if (!r.ok()) std::abort();
      hop.add(r.value().stretch);
      lat.add(r.value().latency_stretch);
    }
    table.add_row({weighted ? "latency-weighted" : "hop-count",
                   Table::fmt(hop.mean(), 3), Table::fmt(lat.mean(), 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("Embedding the latency metric trades a little hop stretch for "
              "better latency stretch when links are heterogeneous.\n");
}

void ablate_embedding_algorithm() {
  std::printf("\n[F] Embedding algorithm: M-position (classical MDS) vs "
              "Vivaldi spring relaxation (80-switch Waxman, T = 50)\n");
  const topology::EdgeNetwork net =
      bench::make_waxman_network(80, 10, 3, 8300);
  Table table({"embedding", "stress", "mean stretch", "max/avg (100k items)"});
  const auto ids = bench::make_ids(100000, 24);
  for (auto algo : {core::EmbeddingAlgorithm::kMPosition,
                    core::EmbeddingAlgorithm::kVivaldi}) {
    core::VirtualSpaceOptions opt = bench::gred_options(50);
    opt.embedding = algo;
    auto sys = core::GredSystem::create(net, opt);
    if (!sys.ok()) std::abort();
    Rng rng(25);
    RunningStats stretch;
    for (int i = 0; i < 150; ++i) {
      auto r = sys.value().place("emb-" + std::to_string(i), "",
                                 rng.next_below(80));
      if (!r.ok()) std::abort();
      stretch.add(r.value().stretch);
    }
    const double bal = core::load_balance(
                           bench::gred_loads(sys.value(), ids))
                           .max_over_avg;
    table.add_row(
        {algo == core::EmbeddingAlgorithm::kMPosition ? "M-position"
                                                      : "Vivaldi",
         Table::fmt(sys.value().controller().space().embedding_stress(), 3),
         Table::fmt(stretch.mean(), 3), Table::fmt(bal, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("A decentralized embedding is a viable drop-in; the paper's "
              "M-position needs global topology knowledge the SDN "
              "controller already has.\n");
}

void ablate_second_dht_baseline() {
  std::printf("\n[G] Second DHT baseline: GRED vs Chord vs Kademlia "
              "(60 switches x 10 servers, 100 lookups, 100k items)\n");
  const topology::EdgeNetwork net =
      bench::make_waxman_network(60, 10, 3, 8400);
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());
  auto gred = core::GredSystem::create(net, bench::gred_options(50));
  auto ring = chord::ChordRing::build(net);
  auto kad_net = kad::KademliaNetwork::build(net);
  if (!gred.ok() || !ring.ok() || !kad_net.ok()) std::abort();

  Rng rng(26);
  RunningStats gred_s, chord_s, kad_s;
  for (int i = 0; i < 100; ++i) {
    const std::string id = "dht-" + std::to_string(i);
    const crypto::DataKey key(id);
    auto r = gred.value().place(id, "", rng.next_below(60));
    if (!r.ok()) std::abort();
    gred_s.add(r.value().stretch);
    const topology::ServerId origin = rng.next_below(net.server_count());
    chord_s.add(chord::measure_lookup(ring.value(), net, apsp, origin,
                                      key.prefix64())
                    .stretch);
    kad_s.add(kad_net.value()
                  .measure_lookup(net, apsp, origin, key.prefix64())
                  .stretch);
  }

  const auto ids = bench::make_ids(100000, 27);
  const double gred_bal = core::load_balance(
                              bench::gred_loads(gred.value(), ids))
                              .max_over_avg;
  const double chord_bal =
      core::load_balance(bench::chord_loads(ring.value(), net, ids))
          .max_over_avg;
  std::vector<std::size_t> kad_loads(net.server_count(), 0);
  for (const std::string& id : ids) {
    ++kad_loads[kad_net.value().closest_server(
        crypto::DataKey(id).prefix64())];
  }
  const double kad_bal = core::load_balance(kad_loads).max_over_avg;

  Table table({"protocol", "mean stretch", "max/avg"});
  table.add_row({"GRED (T=50)", Table::fmt(gred_s.mean(), 3),
                 Table::fmt(gred_bal, 3)});
  table.add_row({"Chord", Table::fmt(chord_s.mean(), 3),
                 Table::fmt(chord_bal, 3)});
  table.add_row({"Kademlia (k=8)", Table::fmt(kad_s.mean(), 3),
                 Table::fmt(kad_bal, 3)});
  std::printf("%s", table.to_string().c_str());
  std::printf("The overlay/underlay mismatch is not a Chord quirk: any "
              "multi-hop DHT pays it; GRED's one-hop design is what wins.\n");
}

}  // namespace

int main() {
  bench::print_header("Ablations", "design-choice sensitivity studies",
                      "see each section");
  ablate_cvt_samples();
  ablate_embedding_dimension();
  ablate_chord_virtual_nodes();
  ablate_replication();
  ablate_latency_embedding();
  ablate_embedding_algorithm();
  ablate_second_dht_baseline();
  return 0;
}
