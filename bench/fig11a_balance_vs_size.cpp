// Fig. 11(a): load balance (max/avg) vs network size — Chord vs
// GRED(T=10) vs GRED(T=50). 200..1000 edge servers (20..100 switches,
// 10 servers each), 100,000 data items (Section VII-E1). Expectation:
// Chord's max/avg grows with size; GRED stays nearly flat, and T=50
// beats T=10.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 11(a)", "load balance max/avg vs number of edge servers",
      "Chord grows with size; GRED(T=50) < GRED(T=10), both nearly flat");

  const std::size_t items = 100000;
  const auto ids = bench::make_ids(items, 11);

  Table table({"servers", "Chord", "GRED (T=10)", "GRED (T=50)"});
  const std::vector<std::size_t> sizes = {20, 40, 60, 80, 100};
  std::vector<std::vector<std::string>> rows(sizes.size());
  bench::parallel_trials(sizes.size(), [&](std::size_t k) {
    const std::size_t n = sizes[k];
    const topology::EdgeNetwork net =
        bench::make_waxman_network(n, 10, 3, 5000 + n);

    auto sys10 = core::GredSystem::create(net, bench::gred_options(10));
    auto sys50 = core::GredSystem::create(net, bench::gred_options(50));
    auto ring = chord::ChordRing::build(net);
    if (!sys10.ok() || !sys50.ok() || !ring.ok()) std::abort();

    const double chord_bal =
        core::load_balance(bench::chord_loads(ring.value(), net, ids))
            .max_over_avg;
    const double g10 =
        core::load_balance(bench::gred_loads(sys10.value(), ids))
            .max_over_avg;
    const double g50 =
        core::load_balance(bench::gred_loads(sys50.value(), ids))
            .max_over_avg;

    rows[k] = {std::to_string(net.server_count()), Table::fmt(chord_bal),
               Table::fmt(g10), Table::fmt(g50)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
