// Hotspot bench: Zipf + spatially-localized retrieval traffic against
// the two hotspot defenses (ROADMAP "Hotspot traffic"): the per-switch
// hot-key cache and load-driven range extension (with a popularity-
// weighted CVT density for the defended configuration). For each
// alpha in {0.8, 1.0, 1.2} x {cache off/on} x {extension off/on} the
// bench builds a fresh deployment, replays an adaptive phase (warms
// the cache, rolls the load tracker, triggers extensions), then
// measures a second trace through the FIFO delay model and the
// per-switch load tracker.
//
// Emits BENCH_hotspot.json:
//
//   switches / universe / adapt_ops / meas_ops
//   <cell>_p50_ms, <cell>_p99_ms     response delay (cell = a12_cache1_ext0 ...)
//   <cell>_max_avg_load              max/avg observed per-switch retrievals
//   <cell>_hit_rate                  cache hit rate over the measured trace
//   <cell>_extensions                load-driven extensions performed
//   a12_p99_improvement_pct          both defenses vs. neither, alpha = 1.2
//   a12_load_improvement_pct         (asserted >= 0 along with p99)
//   hotspot_cache_hit_rate           defended cell hit rate (asserted > 0)
//   hotspot_cached_pkts_per_sec      probe-or-route fast-path throughput
//   hotspot_fast_hit_fraction        hit share of the fast-path loop
//   hotspot_allocs_per_packet        asserted == 0 (cache-on fast path)
//
// `--smoke` shrinks the topology and trace lengths for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/delay_experiment.hpp"
#include "crypto/data_key.hpp"
#include "geometry/point.hpp"
#include "obs/switch_load.hpp"
#include "sden/hot_key_cache.hpp"
#include "sden/network.hpp"
#include "workload/hotspot.hpp"

using namespace gred;

// Global allocation counter for the zero-steady-state-alloc assertion.
static std::size_t g_allocs = 0;
void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_hotspot: check failed: %s\n", what);
    std::abort();
  }
}

struct CellParams {
  std::size_t switches = 0;
  std::size_t universe = 0;
  std::size_t adapt_ops = 0;
  std::size_t meas_ops = 0;
  std::size_t windows = 8;
  std::size_t alloc_rounds = 0;
  double alpha = 1.0;
  bool use_cache = false;
  bool use_ext = false;
  std::uint64_t seed = 0;  ///< per-alpha, shared by the 4 cells
};

struct CellResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_avg_load = 0.0;
  double hit_rate = 0.0;
  double extensions = 0.0;
  std::size_t cache_hits = 0;
  // Filled only for the cell that runs the allocation-audited loop.
  double cached_pps = 0.0;
  double allocs_per_packet = 0.0;
  double fast_hit_fraction = 0.0;
};

/// Steady-state cache-on fast path: probe the ingress switch's hot-key
/// cache, serve the payload into a reused buffer on a hit, route the
/// packet on a miss — with the allocation counter checked across the
/// timed region.
void cached_fast_path(sden::SdenNetwork& network, sden::HotKeyCache& cache,
                      const std::vector<sden::Packet>& pkts,
                      const std::vector<sden::SwitchId>& ingresses,
                      std::size_t rounds, CellResult* res) {
  sden::RouteResult scratch;
  sden::Packet pkt_scratch;
  std::string payload_scratch;
  // Warm-up: sizes every scratch capacity so the timed region is
  // steady (route buffers, packet strings, the payload buffer).
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const sden::HotKeyCache::Entry* e =
        cache.probe(ingresses[i], pkts[i].key_digest);
    if (e != nullptr) {
      payload_scratch.assign(e->payload);
      continue;
    }
    pkt_scratch = pkts[i];
    network.route(pkt_scratch, ingresses[i], scratch);
    require(scratch.status.ok() && scratch.found, "warm-up route");
  }
  const std::size_t a0 = g_allocs;
  const double t0 = now_s();
  std::size_t total = 0;
  std::size_t hits = 0;
  for (std::size_t rd = 0; rd < rounds; ++rd) {
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      const sden::HotKeyCache::Entry* e =
          cache.probe(ingresses[i], pkts[i].key_digest);
      if (e != nullptr) {
        payload_scratch.assign(e->payload);
        ++hits;
      } else {
        pkt_scratch = pkts[i];
        network.route(pkt_scratch, ingresses[i], scratch);
      }
      ++total;
    }
  }
  const double elapsed = now_s() - t0;
  res->cached_pps = static_cast<double>(total) / elapsed;
  res->allocs_per_packet =
      static_cast<double>(g_allocs - a0) / static_cast<double>(total);
  res->fast_hit_fraction =
      static_cast<double>(hits) / static_cast<double>(total);
  require(hits > 0, "fast-path loop never hit the cache");
}

CellResult run_cell(const topology::EdgeNetwork& desc, const CellParams& p,
                    bool measure_alloc) {
  workload::HotspotOptions wopt;
  wopt.universe = p.universe;
  wopt.prefix = "hot";
  wopt.grid = 4;
  wopt.zipf_exponent = p.alpha;
  wopt.locality = 0.7;
  wopt.ingress_locality = 0.7;
  wopt.mean_interarrival_ms = 0.05;
  // Three active-region rotations per trace.
  wopt.diurnal_period_ms = static_cast<double>(p.adapt_ops) *
                           wopt.mean_interarrival_ms / 3.0;

  core::VirtualSpaceOptions vopt = bench::gred_options(30);
  if (p.use_ext) {
    // Defended configuration: popularity-weighted C-regulation. The
    // stationary region demand only depends on the key universe, so a
    // probe workload with a dummy switch position supplies it before
    // the deployment (and its real positions) exists.
    workload::HotspotWorkload probe(wopt, {geometry::Point2D{0.5, 0.5}});
    const std::vector<double> demand = probe.region_demand();
    const std::size_t g = wopt.grid;
    const double regions = static_cast<double>(demand.size());
    double dmax = 0.0;
    for (double d : demand) dmax = std::max(dmax, d);
    vopt.cvt_density = [demand, g, regions](const geometry::Point2D& pt) {
      const auto axis = [g](double v) {
        if (!(v > 0.0)) return std::size_t{0};
        const std::size_t cell =
            static_cast<std::size_t>(v * static_cast<double>(g));
        return cell >= g ? g - 1 : cell;
      };
      return demand[axis(pt.x) + g * axis(pt.y)] * regions;
    };
    vopt.cvt_density_bound = dmax * regions;
  }

  auto built = core::GredSystem::create(desc, vopt);
  require(built.ok(), "GredSystem::create");
  core::GredSystem& sys = built.value();

  // Workload over the deployment's actual virtual positions.
  std::vector<geometry::Point2D> positions(p.switches,
                                           geometry::Point2D{0.5, 0.5});
  const auto& space = sys.controller().space();
  for (std::size_t i = 0; i < space.participants().size(); ++i) {
    positions[space.participants()[i]] = space.positions()[i];
  }
  workload::HotspotWorkload load(wopt, positions);

  Rng place_rng(p.seed);
  for (const std::string& id : load.ids()) {
    require(sys.place(id, "payload-" + id, place_rng.next_below(p.switches))
                .ok(),
            "place");
  }

  obs::SwitchLoadTracker tracker(p.switches, 0.5);
  sys.network().set_load_tracker(&tracker);
  sden::HotKeyCache* cache = nullptr;
  if (p.use_cache) {
    cache = &sys.network().enable_hot_key_cache(32);
    cache->set_mode(sden::HotKeyCache::Mode::kLearn);
  }

  // --- Adaptive phase: warm the cache, roll load windows, extend. ---
  Rng adapt_rng(p.seed + 1);
  const std::vector<workload::Op> adapt =
      load.retrieval_trace(p.adapt_ops, adapt_rng);
  std::size_t extensions = 0;
  const std::size_t window = (adapt.size() + p.windows - 1) / p.windows;
  for (std::size_t i = 0; i < adapt.size(); ++i) {
    auto r = sys.retrieve(adapt[i].data_id, adapt[i].access_switch);
    require(r.ok() && r.value().route.found, "adaptive retrieval");
    if ((i + 1) % window == 0 || i + 1 == adapt.size()) {
      tracker.roll_window();
      if (p.use_ext) {
        core::LoadExtensionOptions lopt;
        lopt.hot_factor = 1.5;
        lopt.max_extensions = 2;
        auto done = sys.extend_for_load(tracker, lopt);
        require(done.ok(), "extend_for_load");
        extensions += done.value();
      }
    }
  }

  // Control-plane actions in the adaptive phase (extensions, hot-item
  // migrations) conservatively drop every cached answer; re-warm in
  // learn mode before measuring, as a steady deployment would between
  // control events.
  if (cache != nullptr) {
    Rng warm_rng(p.seed + 3);
    const std::vector<workload::Op> warm =
        load.retrieval_trace(p.meas_ops, warm_rng);
    for (const workload::Op& op : warm) {
      auto r = sys.retrieve(op.data_id, op.access_switch);
      require(r.ok() && r.value().route.found, "warm retrieval");
    }
  }

  // --- Measurement: fresh trace through the FIFO delay model, loads
  // observed per switch. kServe makes the concurrent routing phase
  // probe-only. ---
  Rng meas_rng(p.seed + 2);
  const std::vector<workload::Op> meas =
      load.retrieval_trace(p.meas_ops, meas_rng);
  std::vector<core::RetrievalRequest> requests;
  requests.reserve(meas.size());
  for (const workload::Op& op : meas) {
    requests.push_back({op.data_id, op.access_switch, op.at_ms});
  }
  if (cache != nullptr) {
    cache->set_mode(sden::HotKeyCache::Mode::kServe);
    cache->reset_stats();
  }
  tracker.reset();

  core::RetrievalDelayExperiment experiment(sys, core::DelayModelOptions{});
  auto out = experiment.run(requests);
  require(out.ok(), "delay experiment");
  require(out.value().not_found == 0, "measurement retrieval missed");

  CellResult res;
  res.p50_ms = out.value().delay.p50;
  res.p99_ms = out.value().delay.p99;
  res.cache_hits = out.value().cache_hits;
  res.hit_rate = cache != nullptr ? cache->hit_rate() : 0.0;
  res.extensions = static_cast<double>(extensions);

  std::uint64_t max_load = 0;
  std::uint64_t total_load = 0;
  for (std::size_t s = 0; s < p.switches; ++s) {
    const std::uint64_t c = tracker.window_count(s);
    max_load = std::max(max_load, c);
    total_load += c;
  }
  const double avg_load =
      static_cast<double>(total_load) / static_cast<double>(p.switches);
  res.max_avg_load = static_cast<double>(max_load) / avg_load;

  if (measure_alloc) {
    require(cache != nullptr, "alloc audit needs the cache enabled");
    const std::size_t sample = std::min<std::size_t>(meas.size(), 1000);
    std::vector<sden::Packet> pkts;
    std::vector<sden::SwitchId> ingresses;
    pkts.reserve(sample);
    ingresses.reserve(sample);
    for (std::size_t i = 0; i < sample; ++i) {
      sden::Packet pk;
      pk.type = sden::PacketType::kRetrieval;
      pk.data_id = meas[i].data_id;
      const crypto::DataKey key(meas[i].data_id);
      pk.target = {key.position().x, key.position().y};
      pk.set_key(key);
      pkts.push_back(std::move(pk));
      ingresses.push_back(meas[i].access_switch);
    }
    cached_fast_path(sys.network(), *cache, pkts, ingresses, p.alloc_rounds,
                     &res);
  }

  sys.network().set_load_tracker(nullptr);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header(
      "Hotspot", "Zipf+spatial traffic vs. hot-key caches + load extension",
      "cache+extension cut p99 delay and max/avg switch load at alpha=1.2");

  CellParams base;
  base.switches = smoke ? 48 : 96;
  base.universe = smoke ? 600 : 1500;
  base.adapt_ops = smoke ? 2500 : 12000;
  base.meas_ops = smoke ? 2500 : 12000;
  base.alloc_rounds = smoke ? 4 : 20;

  const topology::EdgeNetwork desc =
      bench::make_waxman_network(base.switches, 4, 3, 7300 + base.switches);

  const double alphas[3] = {0.8, 1.0, 1.2};
  const char* alabel[3] = {"a08", "a10", "a12"};
  CellResult results[3][2][2];
  for (std::size_t a = 0; a < 3; ++a) {
    for (int c = 0; c < 2; ++c) {
      for (int e = 0; e < 2; ++e) {
        CellParams p = base;
        p.alpha = alphas[a];
        p.use_cache = c == 1;
        p.use_ext = e == 1;
        p.seed = 9500 + 10 * a;
        const bool audit = a == 2 && c == 1 && e == 1;
        results[a][c][e] = run_cell(desc, p, audit);
        const CellResult& r = results[a][c][e];
        std::printf(
            "alpha %.1f cache %d ext %d: p50 %8.3f ms, p99 %9.3f ms, "
            "max/avg %6.2f, hit %.3f, ext %2.0f\n",
            alphas[a], c, e, r.p50_ms, r.p99_ms, r.max_avg_load, r.hit_rate,
            r.extensions);
      }
    }
  }

  const CellResult& off = results[2][0][0];   // alpha=1.2, no defenses
  const CellResult& cached = results[2][1][0];
  const CellResult& defended = results[2][1][1];
  const double p99_improvement_pct =
      (off.p99_ms - defended.p99_ms) / off.p99_ms * 100.0;
  const double load_improvement_pct =
      (off.max_avg_load - defended.max_avg_load) / off.max_avg_load * 100.0;

  require(defended.hit_rate > 0.0, "defended cell never hit the cache");
  require(defended.cache_hits > 0, "measured trace saw no cache hits");
  require(cached.p99_ms <= off.p99_ms,
          "cache-on p99 worse than cache-off at alpha=1.2");
  require(defended.p99_ms <= off.p99_ms,
          "defended p99 worse than undefended at alpha=1.2");
  require(defended.max_avg_load <= off.max_avg_load,
          "defended max/avg load worse than undefended at alpha=1.2");
  require(results[2][0][1].extensions > 0.0,
          "load-driven extension never fired at alpha=1.2");
  require(defended.allocs_per_packet == 0.0,
          "cache-on fast path performed a heap allocation");

  std::printf(
      "\nalpha=1.2 defended vs. off: p99 %+.1f%%, max/avg load %+.1f%%, "
      "hit rate %.3f\nfast path: %9.0f pkts/s, allocs/pkt %.2f "
      "(hit fraction %.3f)\n",
      -p99_improvement_pct, -load_improvement_pct, defended.hit_rate,
      defended.cached_pps, defended.allocs_per_packet,
      defended.fast_hit_fraction);

  std::vector<std::pair<std::string, double>> fields = {
      {"switches", static_cast<double>(base.switches)},
      {"universe", static_cast<double>(base.universe)},
      {"adapt_ops", static_cast<double>(base.adapt_ops)},
      {"meas_ops", static_cast<double>(base.meas_ops)},
  };
  for (std::size_t a = 0; a < 3; ++a) {
    for (int c = 0; c < 2; ++c) {
      for (int e = 0; e < 2; ++e) {
        const CellResult& r = results[a][c][e];
        const std::string cell = std::string(alabel[a]) + "_cache" +
                                 (c == 1 ? "1" : "0") + "_ext" +
                                 (e == 1 ? "1" : "0");
        fields.emplace_back(cell + "_p50_ms", r.p50_ms);
        fields.emplace_back(cell + "_p99_ms", r.p99_ms);
        fields.emplace_back(cell + "_max_avg_load", r.max_avg_load);
        fields.emplace_back(cell + "_hit_rate", r.hit_rate);
        fields.emplace_back(cell + "_extensions", r.extensions);
      }
    }
  }
  fields.emplace_back("a12_p99_improvement_pct", p99_improvement_pct);
  fields.emplace_back("a12_load_improvement_pct", load_improvement_pct);
  fields.emplace_back("hotspot_cache_hit_rate", defended.hit_rate);
  fields.emplace_back("hotspot_cached_pkts_per_sec", defended.cached_pps);
  fields.emplace_back("hotspot_fast_hit_fraction",
                      defended.fast_hit_fraction);
  fields.emplace_back("hotspot_allocs_per_packet",
                      defended.allocs_per_packet);
  bench::write_json("BENCH_hotspot.json", fields);
  std::printf("\nwrote BENCH_hotspot.json\n");
  return 0;
}
