// Data-plane throughput bench: the compiled fast path
// (SdenNetwork::route with reused scratch — indexed flow tables,
// compiled route plan, allocation-free steady state) against a
// pre-fast-path reference that routes every packet the way the seed
// data plane did (sden/seed_router.hpp), plus the sharded runtime
// (shard/ShardedDataPlane) under both closed-loop replay and open-loop
// sustained load.
//
// Reports packets/sec, ns/hop, p50/p99 route latency, and steady-state
// allocations per packet on 64/256/1024-switch Waxman topologies, the
// thread-pool parallel replay throughput, a shard-count scaling sweep,
// and an open-loop load sweep with queueing-latency percentiles, and
// emits BENCH_data_plane.json:
//
//   n<S>_reference_pkts_per_sec   seed-style walk (fresh result, SHA-256)
//   n<S>_fast_pkts_per_sec        compiled fast path, reused scratch
//   n<S>_fast_pkts_per_sec_parallel  pool replay over GRED_THREADS
//   n<S>_speedup                  fast / reference (same run, same machine)
//   n<S>_ns_per_hop               fast-path time per physical hop
//   n<S>_route_p50_ns / _p99_ns   per-packet fast-path route latency
//   n<S>_allocs_per_packet        heap allocations per steady-state route
//   n<S>_shards<K>_pkts_per_sec   sharded closed-loop replay at K shards
//   n<S>_shards<K>_speedup_vs_1shard
//   n<S>_sharded_identical        1 when every sharded result matched route()
//   n<S>_sharded_allocs_per_packet  sharded steady-state allocations
//   n<S>_load<I>_offered_pps / _achieved_pps  open-loop sweep point I
//   n<S>_load<I>_p50_us / _p99_us / _p999_us  arrival-to-completion latency
//
// Every fast-path result is first checked bit-identical against the
// live-pipeline walk (reference_route) and the seed-faithful walk, and
// every sharded result against the fast path, before any number is
// reported; the fast and sharded steady states are asserted
// allocation-free. All measured sections run after an untimed warm-up
// pass so first-touch costs (lane/result capacity growth, page faults,
// branch training) never land inside a timed region.
//
// `--smoke` shrinks sizes/rounds for CI. `--shards=K` pins the scaling
// sweep to {1, K} instead of the hardware-derived list. `--trace`
// additionally runs each size with the gred::obs layer on (metrics +
// route-trace ring), reports the observed overhead, asserts the traced
// steady state is still allocation-free, and dumps the collected
// observability state to BENCH_data_plane_obs.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "crypto/data_key.hpp"
#include "geometry/point.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sden/network.hpp"
#include "sden/reference_router.hpp"
#include "sden/seed_router.hpp"
#include "shard/sharded_data_plane.hpp"

using namespace gred;

// Global allocation counter: the zero-steady-state-alloc assertions and
// the allocs-per-packet metrics both read it. Atomic because the
// sharded sections allocate (or must be shown not to) from worker
// threads, not just the driver.
static std::atomic<std::size_t> g_allocs{0};
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_data_plane: check failed: %s\n", what);
    std::abort();
  }
}

/// Full RouteResult equality, statuses included — the same predicate
/// the differential tests use.
bool results_equal(const sden::RouteResult& a, const sden::RouteResult& b) {
  if (a.status.ok() != b.status.ok()) return false;
  if (!a.status.ok() &&
      (a.status.error().code != b.status.error().code ||
       a.status.error().message != b.status.error().message)) {
    return false;
  }
  return a.switch_path == b.switch_path && a.path_cost == b.path_cost &&
         a.delivered_to == b.delivered_to && a.found == b.found &&
         a.responder == b.responder && a.payload == b.payload;
}

struct ShardPoint {
  std::size_t shards = 0;
  double pps = 0;
  double speedup_vs_1 = 0;
};

struct LoadPoint {
  double offered_pps = 0;
  double achieved_pps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

struct SizeReport {
  double n = 0;
  double reference_pps = 0;
  double fast_pps = 0;
  double fast_pps_parallel = 0;
  double speedup = 0;
  double ns_per_hop = 0;
  double hops_per_packet = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double allocs_per_packet = 0;
  double sharded_allocs_per_packet = 0;
  double sharded_identical = 0;
  std::vector<ShardPoint> shard_points;
  std::vector<LoadPoint> load_points;
  double traced_pps = 0;          ///< --trace only: obs-on throughput
  double trace_overhead_pct = 0;  ///< --trace only: vs obs-off fast path
};

SizeReport run_size(std::size_t n, bool smoke, bool trace,
                    const std::vector<std::size_t>& shard_counts) {
  SizeReport rep;
  rep.n = static_cast<double>(n);

  const topology::EdgeNetwork net =
      bench::make_waxman_network(n, 4, 3, 7100 + n);
  auto sys = core::GredSystem::create(net, bench::gred_options(30));
  require(sys.ok(), "GredSystem::create");
  sden::SdenNetwork& network = sys.value().network();

  const std::size_t items = smoke ? 400 : 2000;
  Rng rng(99);
  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  pkts.reserve(items);
  ingresses.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id = "dp-" + std::to_string(i);
    require(sys.value().place(id, "payload-" + id, rng.next_below(n)).ok(),
            "place");
    sden::Packet p;
    p.type = sden::PacketType::kRetrieval;
    p.data_id = id;
    const crypto::DataKey key(id);
    p.target = {key.position().x, key.position().y};
    p.set_key(key);
    pkts.push_back(p);
    ingresses.push_back(rng.next_below(n));
  }

  // --- Warm-up: one untimed full pass so the compiled plan, the
  // scratch capacities, and the touched pages are all hot before any
  // measured (or alloc-asserted) region below. ---
  sden::RouteResult scratch;
  sden::Packet pkt_scratch;
  for (std::size_t i = 0; i < items; ++i) {
    pkt_scratch = pkts[i];
    network.route(pkt_scratch, ingresses[i], scratch);
  }

  // --- Differential: fast path vs live pipeline vs seed-faithful walk,
  // full RouteResult equality on every packet. The fast results are
  // kept: the sharded section below must match them bit-for-bit. ---
  std::vector<sden::RouteResult> fast_results(items);
  for (std::size_t i = 0; i < items; ++i) {
    pkt_scratch = pkts[i];
    network.route(pkt_scratch, ingresses[i], scratch);
    require(scratch.status.ok() && scratch.found, "fast route");
    const sden::RouteResult live =
        sden::reference_route(network, pkts[i], ingresses[i]);
    const sden::RouteResult seed =
        sden::seed_faithful_route(network, pkts[i], ingresses[i]);
    require(results_equal(scratch, live) && results_equal(scratch, seed),
            "fast path diverged from reference");
    fast_results[i] = scratch;
  }

  const std::size_t fast_rounds = smoke ? 5 : (n >= 1024 ? 20 : 100);
  const std::size_t ref_rounds = smoke ? 2 : (n >= 1024 ? 5 : 20);

  // --- Zero-steady-state-alloc assertion + fast throughput. ---
  const std::size_t a0 = g_allocs.load(std::memory_order_relaxed);
  double t0 = now_s();
  std::size_t total = 0;
  std::size_t total_hops = 0;
  for (std::size_t rd = 0; rd < fast_rounds; ++rd) {
    for (std::size_t i = 0; i < items; ++i) {
      pkt_scratch = pkts[i];
      network.route(pkt_scratch, ingresses[i], scratch);
      total_hops += scratch.hop_count();
      ++total;
    }
  }
  double elapsed = now_s() - t0;
  rep.fast_pps = static_cast<double>(total) / elapsed;
  rep.ns_per_hop = elapsed * 1e9 / static_cast<double>(total_hops);
  rep.hops_per_packet =
      static_cast<double>(total_hops) / static_cast<double>(total);
  rep.allocs_per_packet =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed) - a0) /
      static_cast<double>(total);
  require(g_allocs.load(std::memory_order_relaxed) == a0,
          "steady-state fast path performed a heap allocation");

  // --- Per-packet latency percentiles (timed individually). ---
  {
    std::vector<double> samples;
    samples.reserve(items);
    for (std::size_t i = 0; i < items; ++i) {
      pkt_scratch = pkts[i];
      const auto s0 = std::chrono::steady_clock::now();
      network.route(pkt_scratch, ingresses[i], scratch);
      const auto s1 = std::chrono::steady_clock::now();
      samples.push_back(
          std::chrono::duration<double, std::nano>(s1 - s0).count());
    }
    std::sort(samples.begin(), samples.end());
    rep.p50_ns = samples[samples.size() / 2];
    rep.p99_ns = samples[(samples.size() * 99) / 100];
  }

  // --- Parallel replay: shard the same packets across the pool with
  // per-shard scratch (retrievals route concurrently). One untimed
  // round first so pool wake-up and per-task state are warm. ---
  {
    ThreadPool& pool = global_pool();
    const auto pool_round = [&] {
      pool.parallel_for(0, items, 64, [&](std::size_t lo, std::size_t hi) {
        sden::RouteResult local;
        sden::Packet local_pkt;
        for (std::size_t i = lo; i < hi; ++i) {
          local_pkt = pkts[i];
          network.route(local_pkt, ingresses[i], local);
        }
      });
    };
    pool_round();  // warm-up
    t0 = now_s();
    std::size_t par_total = 0;
    for (std::size_t rd = 0; rd < fast_rounds; ++rd) {
      pool_round();
      par_total += items;
    }
    elapsed = now_s() - t0;
    rep.fast_pps_parallel = static_cast<double>(par_total) / elapsed;
  }

  // --- Sharded closed-loop replay: scaling sweep over shard counts.
  // Every result is required bit-identical to the stored fast-path
  // results, and the steady state (post warm-up) must stay
  // allocation-free across all shard threads. ---
  {
    std::vector<sden::RouteResult> shard_results(items);
    double pps_1shard = 0;
    bool identical = true;
    for (const std::size_t k : shard_counts) {
      shard::ShardedDataPlane plane(network, k);
      plane.replay(pkts.data(), ingresses.data(), items,
                   shard_results.data());  // warm-up (also first-touch)
      for (std::size_t i = 0; i < items; ++i) {
        identical = identical && results_equal(shard_results[i],
                                               fast_results[i]);
      }
      require(identical, "sharded replay diverged from fast path");
      const std::size_t sa0 = g_allocs.load(std::memory_order_relaxed);
      t0 = now_s();
      std::size_t sh_total = 0;
      for (std::size_t rd = 0; rd < fast_rounds; ++rd) {
        plane.replay(pkts.data(), ingresses.data(), items,
                     shard_results.data());
        sh_total += items;
      }
      elapsed = now_s() - t0;
      const std::size_t sa1 = g_allocs.load(std::memory_order_relaxed);
      rep.sharded_allocs_per_packet =
          static_cast<double>(sa1 - sa0) / static_cast<double>(sh_total);
      require(sa1 == sa0,
              "sharded steady state performed a heap allocation");
      ShardPoint pt;
      pt.shards = plane.shard_count();
      pt.pps = static_cast<double>(sh_total) / elapsed;
      if (pt.shards == 1) pps_1shard = pt.pps;
      pt.speedup_vs_1 = pps_1shard > 0 ? pt.pps / pps_1shard : 0;
      rep.shard_points.push_back(pt);
    }
    rep.sharded_identical = identical ? 1 : 0;

    // --- Open-loop sustained load at the largest shard count: sweep
    // offered rates around the measured closed-loop capacity and report
    // arrival-to-completion latency percentiles. Above-capacity points
    // show the saturation knee (queueing delay grows unboundedly). ---
    const double capacity =
        rep.shard_points.empty() ? rep.fast_pps : rep.shard_points.back().pps;
    std::vector<double> levels = smoke ? std::vector<double>{0.5, 1.1}
                                       : std::vector<double>{0.2, 0.5, 0.8, 1.1};
    shard::ShardedDataPlane plane(network, shard_counts.back());
    std::vector<double> latencies(items, 0.0);
    plane.sustained_load(pkts.data(), ingresses.data(), items,
                         shard_results.data(), capacity * 0.5,
                         /*poisson=*/true, /*seed=*/1234,
                         latencies.data());  // warm-up
    for (const double frac : levels) {
      LoadPoint lp;
      const double rate = capacity * frac;
      const shard::LoadResult lr = plane.sustained_load(
          pkts.data(), ingresses.data(), items, shard_results.data(), rate,
          /*poisson=*/true, /*seed=*/1234, latencies.data());
      for (std::size_t i = 0; i < items; ++i) {
        require(results_equal(shard_results[i], fast_results[i]),
                "sustained-load result diverged from fast path");
      }
      lp.offered_pps = lr.offered_pps;
      lp.achieved_pps = lr.achieved_pps;
      std::vector<double> lat;
      lat.reserve(items);
      for (const double v : latencies) {
        if (v >= 0) lat.push_back(v * 1e6);
      }
      std::sort(lat.begin(), lat.end());
      if (!lat.empty()) {
        lp.p50_us = lat[lat.size() / 2];
        lp.p99_us = lat[(lat.size() * 99) / 100];
        lp.p999_us = lat[(lat.size() * 999) / 1000];
      }
      rep.load_points.push_back(lp);
    }
  }

  // --- Traced replay (--trace): same packets with the obs layer on.
  // After one warm-up round (metric registration allocates once), the
  // steady state must stay allocation-free: counter bumps, histogram
  // records, and ring slot writes are all fixed-memory operations. ---
  if (trace) {
    obs::set_enabled(true);
    if (!obs::route_trace().active()) obs::route_trace().enable(4096);
    for (std::size_t i = 0; i < items; ++i) {  // warm-up / registration
      pkt_scratch = pkts[i];
      network.route(pkt_scratch, ingresses[i], scratch);
    }
    const std::size_t ta0 = g_allocs.load(std::memory_order_relaxed);
    t0 = now_s();
    std::size_t traced_total = 0;
    for (std::size_t rd = 0; rd < fast_rounds; ++rd) {
      for (std::size_t i = 0; i < items; ++i) {
        pkt_scratch = pkts[i];
        network.route(pkt_scratch, ingresses[i], scratch);
        ++traced_total;
      }
    }
    elapsed = now_s() - t0;
    require(g_allocs.load(std::memory_order_relaxed) == ta0,
            "traced steady state performed a heap allocation");
    rep.traced_pps = static_cast<double>(traced_total) / elapsed;
    rep.trace_overhead_pct =
        (rep.fast_pps - rep.traced_pps) / rep.fast_pps * 100.0;
    obs::set_enabled(false);
  }

  // --- Seed-style reference throughput (fresh result per packet). ---
  t0 = now_s();
  std::size_t ref_total = 0;
  for (std::size_t rd = 0; rd < ref_rounds; ++rd) {
    for (std::size_t i = 0; i < items; ++i) {
      const sden::RouteResult r =
          sden::seed_faithful_route(network, pkts[i], ingresses[i]);
      require(r.found, "seed reference route");
      ++ref_total;
    }
  }
  elapsed = now_s() - t0;
  rep.reference_pps = static_cast<double>(ref_total) / elapsed;
  rep.speedup = rep.fast_pps / rep.reference_pps;

  std::printf(
      "n=%4zu: fast %9.0f pkts/s (%5.1f ns/hop, %.2f hops/pkt, p50 %5.0f ns, "
      "p99 %6.0f ns, allocs/pkt %.2f)\n        parallel %9.0f pkts/s | "
      "reference %8.0f pkts/s | speedup %.2fx\n",
      n, rep.fast_pps, rep.ns_per_hop, rep.hops_per_packet, rep.p50_ns,
      rep.p99_ns, rep.allocs_per_packet, rep.fast_pps_parallel,
      rep.reference_pps, rep.speedup);
  for (const ShardPoint& pt : rep.shard_points) {
    std::printf("        shards=%zu %9.0f pkts/s (%.2fx vs 1 shard)\n",
                pt.shards, pt.pps, pt.speedup_vs_1);
  }
  for (const LoadPoint& lp : rep.load_points) {
    std::printf(
        "        load %8.0f pps offered -> %8.0f achieved | latency p50 "
        "%7.1f us  p99 %8.1f us  p999 %8.1f us\n",
        lp.offered_pps, lp.achieved_pps, lp.p50_us, lp.p99_us, lp.p999_us);
  }
  if (trace) {
    std::printf("        traced %9.0f pkts/s (obs on, overhead %.1f%%)\n",
                rep.traced_pps, rep.trace_overhead_pct);
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool trace = false;
  std::size_t shards_flag = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const long v = std::atol(argv[i] + 9);
      if (v >= 1) shards_flag = static_cast<std::size_t>(v);
    }
  }
  trace = trace || obs::init_from_env();
  // The obs-off sections (and their allocs/pkt == 0 assertion) always
  // run with the layer off; the traced section flips it on itself.
  obs::set_enabled(false);

  // Shard counts for the scaling sweep: 1 plus doublings up to the
  // default shard count (GRED_SHARDS or hardware); at least {1, 2} so
  // the cross-shard machinery is always exercised. `--shards=K` pins
  // the sweep to {1, K}.
  std::vector<std::size_t> shard_counts = {1};
  if (shards_flag > 0) {
    if (shards_flag > 1) shard_counts.push_back(shards_flag);
  } else {
    const std::size_t top = std::max<std::size_t>(
        2, shard::default_shard_count());
    for (std::size_t k = 2; k <= top; k *= 2) shard_counts.push_back(k);
    if (shard_counts.back() != top) shard_counts.push_back(top);
  }

  bench::print_header(
      "Data plane",
      "compiled fast path vs seed-style reference walk vs sharded runtime",
      "bit-identical results; fast and sharded paths allocation-free in "
      "steady state");
  std::printf("pool threads: %zu (GRED_THREADS or hardware), shard sweep up "
              "to %zu%s\n\n",
              global_pool().thread_count(), shard_counts.back(),
              smoke ? "  [smoke]" : "");

  std::vector<std::size_t> sizes = {64, 256, 1024};
  if (smoke) sizes = {64, 256};

  std::vector<std::pair<std::string, double>> fields;
  for (std::size_t n : sizes) {
    const SizeReport rep = run_size(n, smoke, trace, shard_counts);
    const std::string p = "n" + std::to_string(n) + "_";
    fields.emplace_back(p + "reference_pkts_per_sec", rep.reference_pps);
    fields.emplace_back(p + "fast_pkts_per_sec", rep.fast_pps);
    fields.emplace_back(p + "fast_pkts_per_sec_parallel",
                        rep.fast_pps_parallel);
    fields.emplace_back(p + "speedup", rep.speedup);
    fields.emplace_back(p + "ns_per_hop", rep.ns_per_hop);
    fields.emplace_back(p + "hops_per_packet", rep.hops_per_packet);
    fields.emplace_back(p + "route_p50_ns", rep.p50_ns);
    fields.emplace_back(p + "route_p99_ns", rep.p99_ns);
    fields.emplace_back(p + "allocs_per_packet", rep.allocs_per_packet);
    for (const ShardPoint& pt : rep.shard_points) {
      const std::string sp = p + "shards" + std::to_string(pt.shards) + "_";
      fields.emplace_back(sp + "pkts_per_sec", pt.pps);
      fields.emplace_back(sp + "speedup_vs_1shard", pt.speedup_vs_1);
    }
    fields.emplace_back(p + "sharded_identical", rep.sharded_identical);
    fields.emplace_back(p + "sharded_allocs_per_packet",
                        rep.sharded_allocs_per_packet);
    for (std::size_t i = 0; i < rep.load_points.size(); ++i) {
      const LoadPoint& lp = rep.load_points[i];
      const std::string lpre = p + "load" + std::to_string(i) + "_";
      fields.emplace_back(lpre + "offered_pps", lp.offered_pps);
      fields.emplace_back(lpre + "achieved_pps", lp.achieved_pps);
      fields.emplace_back(lpre + "p50_us", lp.p50_us);
      fields.emplace_back(lpre + "p99_us", lp.p99_us);
      fields.emplace_back(lpre + "p999_us", lp.p999_us);
    }
    if (trace) {
      fields.emplace_back(p + "traced_pkts_per_sec", rep.traced_pps);
      fields.emplace_back(p + "trace_overhead_pct", rep.trace_overhead_pct);
    }
  }
  bench::write_json("BENCH_data_plane.json", fields);
  std::printf("\nwrote BENCH_data_plane.json\n");
  if (trace) {
    const Status written = obs::write_text_file(
        "BENCH_data_plane_obs.json", obs::to_json(obs::default_sources()));
    require(written.ok(), "write BENCH_data_plane_obs.json");
    std::printf("wrote BENCH_data_plane_obs.json (metrics + route trace)\n");
  }
  return 0;
}
