// Data-plane throughput bench: the compiled fast path
// (SdenNetwork::route with reused scratch — indexed flow tables,
// compiled route plan, allocation-free steady state) against a
// pre-fast-path reference that routes every packet the way the seed
// data plane did: sequential closer_to scans over the AoS neighbor
// entries, linear relay/rewrite matching, a fresh SHA-256 of the data
// id at every delivery, and a freshly allocated RouteResult per packet.
//
// Reports packets/sec, ns/hop, p50/p99 route latency, and steady-state
// allocations per packet on 64/256/1024-switch Waxman topologies, plus
// the thread-pool parallel replay throughput, and emits
// BENCH_data_plane.json:
//
//   n<S>_reference_pkts_per_sec   seed-style walk (fresh result, SHA-256)
//   n<S>_fast_pkts_per_sec        compiled fast path, reused scratch
//   n<S>_fast_pkts_per_sec_parallel  sharded over GRED_THREADS
//   n<S>_speedup                  fast / reference (same run, same machine)
//   n<S>_ns_per_hop               fast-path time per physical hop
//   n<S>_route_p50_ns / _p99_ns   per-packet fast-path route latency
//   n<S>_allocs_per_packet        heap allocations per steady-state route
//
// Every fast-path result is first checked bit-identical against the
// live-pipeline walk (reference_route) before any number is reported,
// and the steady state is asserted allocation-free.
//
// `--smoke` shrinks sizes/rounds for CI. `--trace` additionally runs
// each size with the gred::obs layer on (metrics + route-trace ring),
// reports the observed overhead, asserts the traced steady state is
// still allocation-free (ring writes don't allocate), and dumps the
// collected observability state to BENCH_data_plane_obs.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "crypto/data_key.hpp"
#include "geometry/point.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sden/network.hpp"
#include "sden/reference_router.hpp"

using namespace gred;

// Global allocation counter: the zero-steady-state-alloc assertion and
// the allocs-per-packet metric both read it.
static std::size_t g_allocs = 0;
void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_data_plane: check failed: %s\n", what);
    std::abort();
  }
}

/// The seed data plane, reproduced exactly: Switch::process's logic
/// with the seed's data structures and costs — sequential closer_to
/// over the AoS neighbor vector, first-match linear scans of the relay
/// and rewrite vectors, SHA-256 of the data id at delivery, and
/// has_edge + edge_weight lookups per hop.
sden::RouteResult seed_route(sden::SdenNetwork& net, sden::Packet pkt,
                             sden::SwitchId ingress) {
  sden::RouteResult result;
  const topology::EdgeNetwork& desc = net.description();
  const sden::SdenNetwork& cnet = net;
  sden::SwitchId cur = ingress;
  result.switch_path.push_back(cur);

  const std::size_t max_hops = 4 * net.switch_count() + 16;
  for (std::size_t step = 0; step < max_hops; ++step) {
    const sden::Switch& sw = cnet.switch_at(cur);
    const sden::FlowTable& table = sw.table();

    // Stage 1: relay (first-match linear scan, like the seed's
    // match_relay returning optional<RelayEntry>).
    if (pkt.on_virtual_link()) {
      if (pkt.vlink_dest == cur) {
        pkt.clear_virtual_link();
      } else {
        const sden::RelayEntry* relay = nullptr;
        for (const sden::RelayEntry& r : table.relays()) {
          if (r.dest == pkt.vlink_dest) {
            relay = &r;
            break;
          }
        }
        require(relay != nullptr, "seed reference: missing relay");
        result.path_cost +=
            desc.switches().edge_weight(cur, relay->succ).value_or(1.0);
        cur = relay->succ;
        result.switch_path.push_back(cur);
        continue;
      }
    }

    // Stage 2: greedy candidate scan with closer_to calls (Algorithm 2
    // exactly as the seed's greedy_forward).
    const sden::NeighborEntry* best = nullptr;
    for (const sden::NeighborEntry& cand : table.neighbors()) {
      if (best == nullptr ||
          geometry::closer_to(pkt.target, cand.position, best->position)) {
        best = &cand;
      }
    }
    if (best != nullptr &&
        geometry::closer_to(pkt.target, best->position, sw.position())) {
      sden::SwitchId next;
      if (best->physical) {
        next = best->neighbor;
      } else {
        pkt.vlink_dest = best->neighbor;
        pkt.vlink_sour = cur;
        next = best->first_hop;
      }
      require(desc.switches().has_edge(cur, next),
              "seed reference: missing link");
      result.path_cost += desc.switches().edge_weight(cur, next).value_or(1.0);
      cur = next;
      result.switch_path.push_back(cur);
      continue;
    }

    // Delivery: the seed hashed the id afresh (SHA-256 + position
    // derivation) and linearly matched the rewrite table.
    const std::vector<sden::ServerId>& servers = sw.local_servers();
    require(!servers.empty(), "seed reference: no attached servers");
    const crypto::DataKey key(pkt.data_id);
    const std::size_t idx = static_cast<std::size_t>(key.mod(servers.size()));
    const sden::ServerId chosen = servers[idx];
    const sden::RewriteEntry* rewrite = nullptr;
    for (const sden::RewriteEntry& r : table.rewrites()) {
      if (r.original == chosen) {
        rewrite = &r;
        break;
      }
    }
    require(rewrite == nullptr, "seed reference: rewrite on bench topology");
    result.delivered_to.push_back(chosen);
    sden::ServerNode& node = net.server(chosen);
    if (const std::string* payload = node.find(pkt.data_id)) {
      result.found = true;
      result.responder = chosen;
      result.payload = *payload;
      node.note_retrieval();
    }
    return result;
  }
  require(false, "seed reference: hop bound exceeded");
  return result;
}

struct SizeReport {
  double n = 0;
  double reference_pps = 0;
  double fast_pps = 0;
  double fast_pps_parallel = 0;
  double speedup = 0;
  double ns_per_hop = 0;
  double hops_per_packet = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double allocs_per_packet = 0;
  double traced_pps = 0;          ///< --trace only: obs-on throughput
  double trace_overhead_pct = 0;  ///< --trace only: vs obs-off fast path
};

SizeReport run_size(std::size_t n, bool smoke, bool trace) {
  SizeReport rep;
  rep.n = static_cast<double>(n);

  const topology::EdgeNetwork net =
      bench::make_waxman_network(n, 4, 3, 7100 + n);
  auto sys = core::GredSystem::create(net, bench::gred_options(30));
  require(sys.ok(), "GredSystem::create");
  sden::SdenNetwork& network = sys.value().network();

  const std::size_t items = smoke ? 400 : 2000;
  Rng rng(99);
  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  pkts.reserve(items);
  ingresses.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id = "dp-" + std::to_string(i);
    require(sys.value().place(id, "payload-" + id, rng.next_below(n)).ok(),
            "place");
    sden::Packet p;
    p.type = sden::PacketType::kRetrieval;
    p.data_id = id;
    const crypto::DataKey key(id);
    p.target = {key.position().x, key.position().y};
    p.set_key(key);
    pkts.push_back(p);
    ingresses.push_back(rng.next_below(n));
  }

  // --- Differential: fast path vs live pipeline vs seed walk, full
  // RouteResult equality on every packet. ---
  sden::RouteResult scratch;
  sden::Packet pkt_scratch;
  std::size_t warm_hops = 0;
  for (std::size_t i = 0; i < items; ++i) {
    pkt_scratch = pkts[i];
    network.route(pkt_scratch, ingresses[i], scratch);
    require(scratch.status.ok() && scratch.found, "fast route");
    warm_hops += scratch.hop_count();
    const sden::RouteResult live =
        sden::reference_route(network, pkts[i], ingresses[i]);
    const sden::RouteResult seed = seed_route(network, pkts[i], ingresses[i]);
    for (const sden::RouteResult* ref : {&live, &seed}) {
      require(scratch.switch_path == ref->switch_path &&
                  scratch.path_cost == ref->path_cost &&
                  scratch.delivered_to == ref->delivered_to &&
                  scratch.found == ref->found &&
                  scratch.responder == ref->responder &&
                  scratch.payload == ref->payload && ref->status.ok(),
              "fast path diverged from reference");
    }
  }

  const std::size_t fast_rounds = smoke ? 5 : (n >= 1024 ? 20 : 100);
  const std::size_t ref_rounds = smoke ? 2 : (n >= 1024 ? 5 : 20);

  // --- Zero-steady-state-alloc assertion + fast throughput. ---
  const std::size_t a0 = g_allocs;
  double t0 = now_s();
  std::size_t total = 0;
  std::size_t total_hops = 0;
  for (std::size_t rd = 0; rd < fast_rounds; ++rd) {
    for (std::size_t i = 0; i < items; ++i) {
      pkt_scratch = pkts[i];
      network.route(pkt_scratch, ingresses[i], scratch);
      total_hops += scratch.hop_count();
      ++total;
    }
  }
  double elapsed = now_s() - t0;
  rep.fast_pps = static_cast<double>(total) / elapsed;
  rep.ns_per_hop = elapsed * 1e9 / static_cast<double>(total_hops);
  rep.hops_per_packet =
      static_cast<double>(total_hops) / static_cast<double>(total);
  rep.allocs_per_packet =
      static_cast<double>(g_allocs - a0) / static_cast<double>(total);
  require(g_allocs == a0,
          "steady-state fast path performed a heap allocation");

  // --- Per-packet latency percentiles (timed individually). ---
  {
    std::vector<double> samples;
    samples.reserve(items);
    for (std::size_t i = 0; i < items; ++i) {
      pkt_scratch = pkts[i];
      const auto s0 = std::chrono::steady_clock::now();
      network.route(pkt_scratch, ingresses[i], scratch);
      const auto s1 = std::chrono::steady_clock::now();
      samples.push_back(
          std::chrono::duration<double, std::nano>(s1 - s0).count());
    }
    std::sort(samples.begin(), samples.end());
    rep.p50_ns = samples[samples.size() / 2];
    rep.p99_ns = samples[(samples.size() * 99) / 100];
  }

  // --- Parallel replay: shard the same packets across the pool with
  // per-shard scratch (retrievals route concurrently). ---
  {
    ThreadPool& pool = global_pool();
    t0 = now_s();
    std::size_t par_total = 0;
    for (std::size_t rd = 0; rd < fast_rounds; ++rd) {
      pool.parallel_for(0, items, 64, [&](std::size_t lo, std::size_t hi) {
        sden::RouteResult local;
        sden::Packet local_pkt;
        for (std::size_t i = lo; i < hi; ++i) {
          local_pkt = pkts[i];
          network.route(local_pkt, ingresses[i], local);
        }
      });
      par_total += items;
    }
    elapsed = now_s() - t0;
    rep.fast_pps_parallel = static_cast<double>(par_total) / elapsed;
  }

  // --- Traced replay (--trace): same packets with the obs layer on.
  // After one warm-up round (metric registration allocates once), the
  // steady state must stay allocation-free: counter bumps, histogram
  // records, and ring slot writes are all fixed-memory operations. ---
  if (trace) {
    obs::set_enabled(true);
    if (!obs::route_trace().active()) obs::route_trace().enable(4096);
    for (std::size_t i = 0; i < items; ++i) {  // warm-up / registration
      pkt_scratch = pkts[i];
      network.route(pkt_scratch, ingresses[i], scratch);
    }
    const std::size_t ta0 = g_allocs;
    t0 = now_s();
    std::size_t traced_total = 0;
    for (std::size_t rd = 0; rd < fast_rounds; ++rd) {
      for (std::size_t i = 0; i < items; ++i) {
        pkt_scratch = pkts[i];
        network.route(pkt_scratch, ingresses[i], scratch);
        ++traced_total;
      }
    }
    elapsed = now_s() - t0;
    require(g_allocs == ta0,
            "traced steady state performed a heap allocation");
    rep.traced_pps = static_cast<double>(traced_total) / elapsed;
    rep.trace_overhead_pct =
        (rep.fast_pps - rep.traced_pps) / rep.fast_pps * 100.0;
    obs::set_enabled(false);
  }

  // --- Seed-style reference throughput (fresh result per packet). ---
  t0 = now_s();
  std::size_t ref_total = 0;
  for (std::size_t rd = 0; rd < ref_rounds; ++rd) {
    for (std::size_t i = 0; i < items; ++i) {
      const sden::RouteResult r = seed_route(network, pkts[i], ingresses[i]);
      require(r.found, "seed reference route");
      ++ref_total;
    }
  }
  elapsed = now_s() - t0;
  rep.reference_pps = static_cast<double>(ref_total) / elapsed;
  rep.speedup = rep.fast_pps / rep.reference_pps;

  std::printf(
      "n=%4zu: fast %9.0f pkts/s (%5.1f ns/hop, %.2f hops/pkt, p50 %5.0f ns, "
      "p99 %6.0f ns, allocs/pkt %.2f)\n        parallel %9.0f pkts/s | "
      "reference %8.0f pkts/s | speedup %.2fx\n",
      n, rep.fast_pps, rep.ns_per_hop, rep.hops_per_packet, rep.p50_ns,
      rep.p99_ns, rep.allocs_per_packet, rep.fast_pps_parallel,
      rep.reference_pps, rep.speedup);
  if (trace) {
    std::printf("        traced %9.0f pkts/s (obs on, overhead %.1f%%)\n",
                rep.traced_pps, rep.trace_overhead_pct);
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
  }
  trace = trace || obs::init_from_env();
  // The obs-off sections (and their allocs/pkt == 0 assertion) always
  // run with the layer off; the traced section flips it on itself.
  obs::set_enabled(false);

  bench::print_header(
      "Data plane", "compiled fast path vs seed-style reference walk",
      "bit-identical results; fast path allocation-free in steady state");
  std::printf("pool threads: %zu (GRED_THREADS or hardware)%s\n\n",
              global_pool().thread_count(), smoke ? "  [smoke]" : "");

  std::vector<std::size_t> sizes = {64, 256, 1024};
  if (smoke) sizes = {64, 256};

  std::vector<std::pair<std::string, double>> fields;
  for (std::size_t n : sizes) {
    const SizeReport rep = run_size(n, smoke, trace);
    const std::string p = "n" + std::to_string(n) + "_";
    fields.emplace_back(p + "reference_pkts_per_sec", rep.reference_pps);
    fields.emplace_back(p + "fast_pkts_per_sec", rep.fast_pps);
    fields.emplace_back(p + "fast_pkts_per_sec_parallel",
                        rep.fast_pps_parallel);
    fields.emplace_back(p + "speedup", rep.speedup);
    fields.emplace_back(p + "ns_per_hop", rep.ns_per_hop);
    fields.emplace_back(p + "hops_per_packet", rep.hops_per_packet);
    fields.emplace_back(p + "route_p50_ns", rep.p50_ns);
    fields.emplace_back(p + "route_p99_ns", rep.p99_ns);
    fields.emplace_back(p + "allocs_per_packet", rep.allocs_per_packet);
    if (trace) {
      fields.emplace_back(p + "traced_pkts_per_sec", rep.traced_pps);
      fields.emplace_back(p + "trace_overhead_pct", rep.trace_overhead_pct);
    }
  }
  bench::write_json("BENCH_data_plane.json", fields);
  std::printf("\nwrote BENCH_data_plane.json\n");
  if (trace) {
    const Status written = obs::write_text_file(
        "BENCH_data_plane_obs.json", obs::to_json(obs::default_sources()));
    require(written.ok(), "write BENCH_data_plane_obs.json");
    std::printf("wrote BENCH_data_plane_obs.json (metrics + route trace)\n");
  }
  return 0;
}
