// Fig. 7(b): load balance (max/avg) of GRED vs GRED-NoCVT on the
// 6-switch testbed. The paper reports GRED significantly better than
// GRED-NoCVT thanks to the C-regulation refinement.
#include <cstdio>

#include "bench_util.hpp"
#include "topology/presets.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 7(b)", "testbed load balance max/avg (6 switches, 12 servers)",
      "GRED clearly below GRED-NoCVT; optimum is 1");

  auto gred_sys = core::GredSystem::create(
      topology::uniform_edge_network(topology::testbed6(), 2),
      bench::gred_options(50));
  auto nocvt_sys = core::GredSystem::create(
      topology::uniform_edge_network(topology::testbed6(), 2),
      bench::nocvt_options());
  if (!gred_sys.ok() || !nocvt_sys.ok()) return 1;

  Table table({"data items", "GRED max/avg", "GRED-NoCVT max/avg"});
  // Rows share the two systems, but gred_loads only reads the
  // controller's placement function — safe to fan out.
  const std::vector<std::size_t> item_counts = {1000, 5000, 10000, 50000};
  std::vector<std::vector<std::string>> rows(item_counts.size());
  bench::parallel_trials(item_counts.size(), [&](std::size_t k) {
    const std::size_t items = item_counts[k];
    const auto ids = bench::make_ids(items, 7);
    const double g = core::load_balance(
                         bench::gred_loads(gred_sys.value(), ids))
                         .max_over_avg;
    const double n = core::load_balance(
                         bench::gred_loads(nocvt_sys.value(), ids))
                         .max_over_avg;
    rows[k] = {std::to_string(items), Table::fmt(g), Table::fmt(n)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
