// Fig. 8: average response delay of retrieval requests on the testbed.
// The paper's testbed measures wall-clock round trips; our substitute
// replays the same retrievals through core::RetrievalDelayExperiment —
// per-link latency, per-request service time, FIFO queueing at servers.
// Expectation: delay is low and changes only modestly with the number
// of concurrent retrieval requests, and the two GRED variants are
// similar.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/delay_experiment.hpp"
#include "topology/presets.hpp"

using namespace gred;

namespace {

double mean_delay(core::GredSystem& sys, std::size_t requests,
                  std::uint64_t seed) {
  // Preload 200 items.
  std::vector<std::string> ids = bench::make_ids(200, seed);
  for (const auto& id : ids) {
    if (!sys.place(id, "payload", 0).ok()) std::abort();
  }
  core::DelayModelOptions model;  // 0.05 ms/hop, 0.20 ms service
  core::RetrievalDelayExperiment experiment(sys, model);
  Rng rng(seed * 31 + 7);
  auto result =
      experiment.run_uniform(ids, requests, /*spacing_ms=*/0.02, rng);
  if (!result.ok() || result.value().not_found > 0) std::abort();
  return result.value().delay.mean;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 8", "average response delay of retrievals on the testbed (ms)",
      "low delay; modest change as the number of requests grows; both "
      "GRED variants similar");

  Table table({"retrieval requests", "GRED avg delay (ms)",
               "GRED-NoCVT avg delay (ms)"});
  // mean_delay preloads data into the system, so each row gets its own
  // pair of systems and the rows fan out independently.
  const std::vector<std::size_t> request_counts = {100, 250, 500, 750, 1000};
  std::vector<std::vector<std::string>> rows(request_counts.size());
  bench::parallel_trials(request_counts.size(), [&](std::size_t k) {
    const std::size_t requests = request_counts[k];
    auto gred_sys = core::GredSystem::create(
        topology::uniform_edge_network(topology::testbed6(), 2),
        bench::gred_options(50));
    auto nocvt_sys = core::GredSystem::create(
        topology::uniform_edge_network(topology::testbed6(), 2),
        bench::nocvt_options());
    if (!gred_sys.ok() || !nocvt_sys.ok()) {
      std::fprintf(stderr, "system creation failed\n");
      std::abort();
    }
    const double g = mean_delay(gred_sys.value(), requests, requests);
    const double n = mean_delay(nocvt_sys.value(), requests, requests);
    rows[k] = {std::to_string(requests), Table::fmt(g), Table::fmt(n)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
