// Fig. 9(b): routing stretch vs the minimal degree of switches.
// 100 switches, 1000 edge servers, min degree 3..10 (Section VII-C2).
// Expectation: GRED variants far below Chord; stretch decreases
// slightly as the degree grows (greedy finds shorter paths).
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 9(b)",
      "routing stretch vs minimal switch degree (100 switches, 1000 servers)",
      "GRED variants well below Chord; slight decrease with degree");

  Table table({"min degree", "Chord", "GRED", "GRED-NoCVT"});
  const std::size_t first_degree = 3, last_degree = 10;
  std::vector<std::vector<std::string>> rows(last_degree - first_degree + 1);
  bench::parallel_trials(rows.size(), [&](std::size_t k) {
    const std::size_t degree = first_degree + k;
    const topology::EdgeNetwork net =
        bench::make_waxman_network(100, 10, degree, 2000 + degree);

    auto gred_sys = core::GredSystem::create(net, bench::gred_options(50));
    auto nocvt_sys = core::GredSystem::create(net, bench::nocvt_options());
    auto ring = chord::ChordRing::build(net);
    if (!gred_sys.ok() || !nocvt_sys.ok() || !ring.ok()) std::abort();

    const Summary chord_s = summarize(
        bench::chord_stretch_samples(ring.value(), net, 100, degree));
    const Summary gred_s = summarize(
        bench::gred_stretch_samples(gred_sys.value(), 100, degree));
    const Summary nocvt_s = summarize(
        bench::gred_stretch_samples(nocvt_sys.value(), 100, degree + 50));

    rows[k] = {std::to_string(degree), bench::mean_ci_cell(chord_s),
               bench::mean_ci_cell(gred_s), bench::mean_ci_cell(nocvt_s)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
