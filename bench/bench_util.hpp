// Shared harness pieces for the figure-reproduction benches: workload
// generation, GRED/Chord/NoCVT experiment runners, and the measurement
// loops the paper's Section VII describes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "chord/chord.hpp"
#include "chord/underlay.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/metrics.hpp"
#include "core/system.hpp"
#include "topology/edge_network.hpp"
#include "topology/waxman.hpp"

namespace gred::bench {

/// Generates the paper's default simulation substrate: a Waxman graph
/// of `switches` nodes with `min_degree`, `servers_per_switch` servers
/// each (Section VII-B).
topology::EdgeNetwork make_waxman_network(std::size_t switches,
                                          std::size_t servers_per_switch,
                                          std::size_t min_degree,
                                          std::uint64_t seed);

/// `count` data identifiers ("data-<trial>-<i>").
std::vector<std::string> make_ids(std::size_t count, std::uint64_t trial);

/// GRED variant configuration shortcuts.
core::VirtualSpaceOptions gred_options(std::size_t cvt_iterations);
core::VirtualSpaceOptions nocvt_options();

/// Measures GRED placement stretch: `items` random data ids, each
/// entering at a uniformly random access switch. Returns one stretch
/// sample per item.
std::vector<double> gred_stretch_samples(core::GredSystem& sys,
                                         std::size_t items,
                                         std::uint64_t seed);

/// Measures Chord lookup stretch on the same network: each lookup
/// starts from a random server (the access point's server).
std::vector<double> chord_stretch_samples(const chord::ChordRing& ring,
                                          const topology::EdgeNetwork& net,
                                          std::size_t items,
                                          std::uint64_t seed);

/// Per-server load vector after assigning `ids` with GRED's placement
/// function (home switch + H(d) mod s). Uses the controller's ground
/// truth, which tests verify equals the routed destination.
std::vector<std::size_t> gred_loads(core::GredSystem& sys,
                                    const std::vector<std::string>& ids);

/// Per-server load vector after assigning `ids` with Chord.
std::vector<std::size_t> chord_loads(const chord::ChordRing& ring,
                                     const topology::EdgeNetwork& net,
                                     const std::vector<std::string>& ids);

/// Fans `count` independent trial bodies across the global thread pool
/// (GRED_THREADS). fn(i) must write its result into a per-trial slot;
/// the caller assembles output in trial order afterwards, so tables
/// print identically for any thread count.
void parallel_trials(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

/// Writes a flat JSON object of numeric fields (the machine-readable
/// bench outputs, e.g. BENCH_control_plane.json).
void write_json(const std::string& path,
                const std::vector<std::pair<std::string, double>>& fields);

/// "mean +/- ci" cell for the tables.
std::string mean_ci_cell(const Summary& s, int precision = 3);

/// Standard bench banner.
void print_header(const std::string& fig, const std::string& what,
                  const std::string& paper_expectation);

}  // namespace gred::bench
