// Fig. 11(b): load balance (max/avg) vs the amount of data — 100k to
// 1M items on 1000 edge servers (Section VII-E2). Expectation: Chord's
// max/avg above 6; GRED(T=10) below 2.5; GRED(T=50) below 2.
#include <cstdio>

#include "bench_util.hpp"

using namespace gred;

int main() {
  bench::print_header(
      "Fig. 11(b)",
      "load balance max/avg vs amount of data (1000 edge servers)",
      "Chord > 6; GRED(T=10) < 2.5; GRED(T=50) < 2");

  const topology::EdgeNetwork net =
      bench::make_waxman_network(100, 10, 3, 6000);
  auto sys10 = core::GredSystem::create(net, bench::gred_options(10));
  auto sys50 = core::GredSystem::create(net, bench::gred_options(50));
  auto ring = chord::ChordRing::build(net);
  if (!sys10.ok() || !sys50.ok() || !ring.ok()) return 1;

  Table table({"data items", "Chord", "GRED (T=10)", "GRED (T=50)"});
  // Rows share the systems but only read the placement functions.
  const std::vector<std::size_t> item_counts = {100000, 250000, 500000,
                                                750000, 1000000};
  std::vector<std::vector<std::string>> rows(item_counts.size());
  bench::parallel_trials(item_counts.size(), [&](std::size_t k) {
    const auto ids = bench::make_ids(item_counts[k], 12);
    const double chord_bal =
        core::load_balance(bench::chord_loads(ring.value(), net, ids))
            .max_over_avg;
    const double g10 =
        core::load_balance(bench::gred_loads(sys10.value(), ids))
            .max_over_avg;
    const double g50 =
        core::load_balance(bench::gred_loads(sys50.value(), ids))
            .max_over_avg;
    rows[k] = {std::to_string(item_counts[k]), Table::fmt(chord_bal),
               Table::fmt(g10), Table::fmt(g50)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
