// Fuzz harness for control-plane snapshot deserialization
// (core/snapshot): arbitrary text must either parse into a structure
// that survives a serialize -> parse round trip, or fail with a typed
// error — never crash, never allocate from an attacker-chosen count.
#include <cstdint>
#include <string>

#include "core/snapshot.hpp"
#include "fuzz_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = gred::core::parse_snapshot(text);
  if (!parsed.ok()) {
    FUZZ_ASSERT(!parsed.error().message.empty(),
                "parse errors must carry a message");
    return 0;
  }
  const gred::core::Snapshot& snap = parsed.value();
  FUZZ_ASSERT(snap.participants.size() == snap.positions.size(),
              "parse produced mismatched participant/position arrays");

  // Serialization must be a fixed point: serialize(parse(.)) is
  // parseable and serializes to the same bytes (string comparison
  // sidesteps NaN != NaN on hostile coordinate values).
  const std::string one = gred::core::serialize_snapshot(snap);
  auto reparsed = gred::core::parse_snapshot(one);
  FUZZ_ASSERT(reparsed.ok(), "serialize produced unparseable text");
  const std::string two =
      gred::core::serialize_snapshot(reparsed.value());
  FUZZ_ASSERT(one == two, "serialize/parse is not a fixed point");
  return 0;
}
