// Fuzz harness for the Delaunay triangulation: randomized point sets
// with deliberately degenerate shapes (collinear chains, duplicates,
// cocircular quadruples) are built and then extended by incremental
// insertion. Every successful build/insert must satisfy the deep
// gred::check::validate_delaunay invariant (empty circumcircles,
// symmetric adjacency, closed hull) and greedy routing must reach the
// brute-force nearest site.
#include <cstdint>
#include <vector>

#include "check/invariants.hpp"
#include "fuzz_util.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/point.hpp"

using gred::fuzz::ByteSource;
using gred::geometry::DelaunayTriangulation;
using gred::geometry::Point2D;

namespace {

// Point-set generators keyed by the first input byte. Duplicates are
// intentionally possible in every mode: build() must reject them with
// a typed error, never crash.
std::vector<Point2D> make_points(ByteSource& src, std::uint8_t mode) {
  std::vector<Point2D> pts;
  const std::size_t n = 3 + src.below(24);
  pts.reserve(n + 4);
  switch (mode % 4) {
    case 0:  // arbitrary points in a padded unit square
      for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({src.unit_double(-0.25, 1.25),
                       src.unit_double(-0.25, 1.25)});
      }
      break;
    case 1:  // collinear chain (occasionally with a repeat)
      for (std::size_t i = 0; i < n; ++i) {
        const double t = src.unit_double();
        pts.push_back({t, 0.5 + 0.25 * t});
      }
      break;
    case 2: {  // quantized grid: duplicates and cocircular sets abound
      for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({static_cast<double>(src.below(5)) * 0.25,
                       static_cast<double>(src.below(5)) * 0.25});
      }
      break;
    }
    default: {  // random cloud plus an exactly cocircular quadruple
      for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({src.unit_double(), src.unit_double()});
      }
      const double cx = src.unit_double(0.25, 0.75);
      const double cy = src.unit_double(0.25, 0.75);
      const double r = src.unit_double(0.05, 0.2);
      pts.push_back({cx + r, cy});
      pts.push_back({cx - r, cy});
      pts.push_back({cx, cy + r});
      pts.push_back({cx, cy - r});
      break;
    }
  }
  return pts;
}

bool has_duplicate(const std::vector<Point2D>& pts) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (pts[i].x == pts[j].x && pts[i].y == pts[j].y) return true;
    }
  }
  return false;
}

void check_greedy_delivery(const DelaunayTriangulation& dt,
                           ByteSource& src) {
  for (int probe = 0; probe < 4; ++probe) {
    const Point2D target{src.unit_double(-0.5, 1.5),
                         src.unit_double(-0.5, 1.5)};
    const std::size_t start = src.below(dt.size());
    const std::vector<std::size_t> path = dt.greedy_route(start, target);
    FUZZ_ASSERT(!path.empty() && path.front() == start,
                "greedy route must start at the source site");
    FUZZ_ASSERT(path.back() == dt.nearest_site(target),
                "greedy routing stopped short of the nearest site");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteSource src(data, size);
  const std::uint8_t mode = src.u8();
  std::vector<Point2D> pts = make_points(src, mode);
  const bool dup = has_duplicate(pts);

  auto built = DelaunayTriangulation::build(pts);
  if (!built.ok()) {
    FUZZ_ASSERT(dup, "build failed on a duplicate-free point set: " +
                         built.error().to_string());
    return 0;
  }
  FUZZ_ASSERT(!dup, "build accepted duplicate sites");
  DelaunayTriangulation dt = std::move(built).value();

  gred::check::CheckReport report = gred::check::validate_delaunay(dt);
  FUZZ_ASSERT(report.ok(), report.to_string());
  check_greedy_delivery(dt, src);

  // Incremental insertion: a handful of fresh sites, each of which
  // must keep the full invariant (duplicates must be rejected).
  const std::size_t inserts = 1 + src.below(4);
  for (std::size_t k = 0; k < inserts; ++k) {
    const Point2D p = k % 2 == 0
                          ? Point2D{src.unit_double(-0.5, 1.5),
                                    src.unit_double(-0.5, 1.5)}
                          : dt.points()[src.below(dt.size())];  // duplicate
    bool exists = false;
    for (const Point2D& q : dt.points()) {
      if (q.x == p.x && q.y == p.y) exists = true;
    }
    auto inserted = dt.insert(p);
    FUZZ_ASSERT(inserted.ok() == !exists,
                exists ? "insert accepted a duplicate site"
                       : "insert rejected a fresh site: " +
                             inserted.error().to_string());
    if (inserted.ok()) {
      report = gred::check::validate_delaunay(dt);
      FUZZ_ASSERT(report.ok(), report.to_string());
    }
  }
  check_greedy_delivery(dt, src);
  return 0;
}
