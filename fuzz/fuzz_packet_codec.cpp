// Fuzz harness for the GRED packet wire codec (sden/packet_codec).
//
// Two directions per input:
//   1. decode(bytes): must never crash; a successful decode must be
//      well-formed (validate_packet) and re-encode byte-identically.
//   2. bytes -> synthesized Packet -> encode -> decode: must round
//      trip field-for-field.
#include <cstdint>

#include "fuzz_util.hpp"
#include "sden/packet_codec.hpp"

using gred::fuzz::ByteSource;
using gred::sden::Packet;
using gred::sden::PacketType;

namespace {

void check_decode_direction(const std::uint8_t* data, std::size_t size) {
  auto decoded = gred::sden::decode_packet(data, size);
  if (!decoded.ok()) {
    FUZZ_ASSERT(!decoded.error().message.empty(),
                "decode errors must carry a message");
    return;
  }
  const Packet& pkt = decoded.value();
  const gred::Status well_formed = gred::sden::validate_packet(pkt);
  FUZZ_ASSERT(well_formed.ok(),
              "decode accepted a malformed packet: " +
                  (well_formed.ok() ? std::string()
                                    : well_formed.error().to_string()));
  const std::vector<std::uint8_t> re = gred::sden::encode_packet(pkt);
  FUZZ_ASSERT(re.size() == size &&
                  std::equal(re.begin(), re.end(), data),
              "encode(decode(bytes)) is not byte-identical");
}

void check_encode_direction(const std::uint8_t* data, std::size_t size) {
  ByteSource src(data, size);
  Packet pkt;
  pkt.type = static_cast<PacketType>(src.below(3));
  pkt.target = {src.unit_double(-2.0, 3.0), src.unit_double(-2.0, 3.0)};
  if (src.u8() % 2 == 0) {
    pkt.vlink_dest = src.below(64);
    pkt.vlink_sour = src.below(64);
  }
  pkt.data_id = src.str(48);
  pkt.payload = src.str(200);

  const std::vector<std::uint8_t> wire = gred::sden::encode_packet(pkt);
  FUZZ_ASSERT(wire.size() == gred::sden::encoded_packet_size(pkt),
              "encoded size disagrees with encoded_packet_size");
  auto back = gred::sden::decode_packet(wire);
  FUZZ_ASSERT(back.ok(), "decode(encode(pkt)) failed: " +
                             (back.ok() ? std::string()
                                        : back.error().to_string()));
  const Packet& rt = back.value();
  FUZZ_ASSERT(rt.type == pkt.type && rt.data_id == pkt.data_id &&
                  rt.payload == pkt.payload && rt.target == pkt.target &&
                  rt.vlink_dest == pkt.vlink_dest &&
                  rt.vlink_sour == pkt.vlink_sour,
              "packet round trip lost a field");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  check_decode_direction(data, size);
  check_encode_direction(data, size);
  return 0;
}
