// Fuzz harness for the crypto stack (sha256 / hex / data_key):
//   * from_hex is total — typed error or exact to_hex inverse;
//   * incremental SHA-256 equals one-shot SHA-256 for any chunking;
//   * DataKey's derived position always lands in the unit square and
//     H(d) mod s always respects the modulus.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>

#include "crypto/data_key.hpp"
#include "crypto/hex.hpp"
#include "crypto/sha256.hpp"
#include "fuzz_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // --- hex decode totality + inversion ---
  auto decoded = gred::crypto::from_hex(text);
  if (decoded.ok()) {
    std::string lower = text;
    std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
      return static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    });
    FUZZ_ASSERT(gred::crypto::to_hex(decoded.value().data(),
                                     decoded.value().size()) == lower,
                "to_hex(from_hex(x)) != lowercase(x)");
  } else {
    FUZZ_ASSERT(decoded.error().code == gred::ErrorCode::kInvalidArgument,
                "from_hex must fail with kInvalidArgument");
    FUZZ_ASSERT(size % 2 != 0 ||
                    !std::all_of(text.begin(), text.end(),
                                 [](unsigned char c) {
                                   return std::isxdigit(c) != 0;
                                 }),
                "from_hex rejected a valid even-length hex string");
  }

  // --- raw bytes always hex round-trip ---
  const std::string hexed = gred::crypto::to_hex(data, size);
  auto back = gred::crypto::from_hex(hexed);
  FUZZ_ASSERT(back.ok() && back.value().size() == size &&
                  std::equal(back.value().begin(), back.value().end(), data),
              "from_hex(to_hex(bytes)) round trip failed");

  // --- incremental vs one-shot SHA-256 ---
  const gred::crypto::Digest oneshot = gred::crypto::sha256(data, size);
  gred::crypto::Sha256 h;
  const std::size_t cut1 = size > 0 ? size / 3 : 0;
  const std::size_t cut2 = size > 0 ? size - size / 5 : 0;
  h.update(data, cut1);
  h.update(data + cut1, cut2 - cut1);
  h.update(data + cut2, size - cut2);
  FUZZ_ASSERT(h.finish() == oneshot,
              "chunked SHA-256 differs from one-shot digest");

  // --- DataKey derivations stay in range and deterministic ---
  const gred::crypto::DataKey key(text);
  const gred::crypto::SpacePoint pos = key.position();
  FUZZ_ASSERT(pos.x >= 0.0 && pos.x <= 1.0 && pos.y >= 0.0 && pos.y <= 1.0,
              "DataKey position left the unit square");
  for (std::uint64_t s : {1ull, 3ull, 7ull, 1000ull}) {
    FUZZ_ASSERT(key.mod(s) < s, "H(d) mod s out of range");
  }
  FUZZ_ASSERT(gred::crypto::DataKey(text).digest() == key.digest(),
              "DataKey is not deterministic");
  FUZZ_ASSERT(gred::crypto::replica_identifier(text, 2) ==
                  gred::crypto::replica_identifier(text, 2),
              "replica_identifier is not deterministic");
  return 0;
}
