// Shared helpers for the fuzz entry points: a hard-failing assert
// (active in every build — a fuzz harness that compiles its oracle
// out is a no-op) and a minimal byte consumer in the spirit of
// libFuzzer's FuzzedDataProvider, kept dependency-free.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#define FUZZ_ASSERT(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "\nfuzz assertion failed at %s:%d\n  %s\n"   \
                           "  %s\n",                                    \
                   __FILE__, __LINE__, #cond, std::string(msg).c_str()); \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

namespace gred::fuzz {

/// Consumes the input buffer front to back; once exhausted, numeric
/// reads return zeros (deterministic, never out of bounds).
class ByteSource {
 public:
  ByteSource(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  std::uint8_t u8() { return empty() ? 0 : data_[pos_++]; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | u8();
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u8();
    return v;
  }

  /// Uniform-ish value in [0, n); n must be > 0.
  std::size_t below(std::size_t n) { return u32() % n; }

  /// Double in [lo, hi] from 32 fuzzed bits — always finite.
  double unit_double(double lo = 0.0, double hi = 1.0) {
    const double t =
        static_cast<double>(u32()) / static_cast<double>(UINT32_MAX);
    return lo + t * (hi - lo);
  }

  std::string str(std::size_t max_len) {
    const std::size_t n = max_len == 0 ? 0 : below(max_len + 1);
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<char>(u8()));
    }
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace gred::fuzz
