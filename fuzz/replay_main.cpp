// Corpus-replay driver: the GCC fallback for the fuzz harnesses.
//
// Under Clang each fuzz_*.cpp builds against libFuzzer
// (-fsanitize=fuzzer) and explores inputs coverage-guided. This
// translation unit provides the main() used everywhere else: it
// replays every file of the corpus directories given as arguments,
// then a deterministic battery of pseudo-random inputs and byte-flip
// mutants of the corpus, through the same LLVMFuzzerTestOneInput
// entry point. The battery is seeded with a fixed constant, so a
// replay run is reproducible and can gate CI (ctest label "fuzz").
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  const char* iters_env = std::getenv("GRED_FUZZ_ITERS");
  const std::size_t random_iters =
      iters_env != nullptr
          ? static_cast<std::size_t>(std::strtoull(iters_env, nullptr, 10))
          : 2000;

  std::vector<std::vector<std::uint8_t>> corpus;
  for (int a = 1; a < argc; ++a) {
    const std::filesystem::path dir(argv[a]);
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
      std::fprintf(stderr, "fuzz replay: skipping %s (not a directory)\n",
                   argv[a]);
      continue;
    }
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    // Directory iteration order is unspecified; sort for determinism.
    std::sort(files.begin(), files.end());
    for (const auto& f : files) corpus.push_back(read_file(f));
  }

  std::size_t executed = 0;
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }

  gred::Rng rng(0x46555a5aULL);  // "FUZZ"
  // Byte-flip mutants of every corpus entry: cheap coverage of the
  // near-miss error paths (bad magic, flipped length bytes, ...).
  for (const auto& input : corpus) {
    for (int m = 0; m < 64; ++m) {
      std::vector<std::uint8_t> mutant = input;
      if (mutant.empty()) break;
      const std::size_t at = rng.next_below(mutant.size());
      mutant[at] = static_cast<std::uint8_t>(rng.next_u64());
      if (m % 4 == 3 && mutant.size() > 1) {
        mutant.resize(rng.next_below(mutant.size()));  // truncations too
      }
      LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
      ++executed;
    }
  }

  // Pseudo-random battery, length-skewed toward small inputs.
  for (std::size_t i = 0; i < random_iters; ++i) {
    const std::size_t len = rng.next_below(i % 16 == 0 ? 1024 : 96);
    std::vector<std::uint8_t> input(len);
    for (std::uint8_t& b : input) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }

  std::printf("fuzz replay: %zu inputs executed (%zu corpus files), "
              "no invariant violations\n",
              executed, corpus.size());
  return 0;
}
