# Empty dependencies file for micro_core_ops.
# This may be replaced when dependencies are built.
