file(REMOVE_RECURSE
  "CMakeFiles/gred_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/gred_bench_util.dir/bench_util.cpp.o.d"
  "libgred_bench_util.a"
  "libgred_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
