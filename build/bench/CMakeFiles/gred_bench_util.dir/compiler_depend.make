# Empty compiler generated dependencies file for gred_bench_util.
# This may be replaced when dependencies are built.
