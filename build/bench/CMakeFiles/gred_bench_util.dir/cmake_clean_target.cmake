file(REMOVE_RECURSE
  "libgred_bench_util.a"
)
