file(REMOVE_RECURSE
  "CMakeFiles/fig09b_stretch_vs_degree.dir/fig09b_stretch_vs_degree.cpp.o"
  "CMakeFiles/fig09b_stretch_vs_degree.dir/fig09b_stretch_vs_degree.cpp.o.d"
  "fig09b_stretch_vs_degree"
  "fig09b_stretch_vs_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_stretch_vs_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
