# Empty dependencies file for fig09b_stretch_vs_degree.
# This may be replaced when dependencies are built.
