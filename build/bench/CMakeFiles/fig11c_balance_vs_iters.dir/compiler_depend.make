# Empty compiler generated dependencies file for fig11c_balance_vs_iters.
# This may be replaced when dependencies are built.
