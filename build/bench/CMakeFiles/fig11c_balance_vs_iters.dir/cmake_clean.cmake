file(REMOVE_RECURSE
  "CMakeFiles/fig11c_balance_vs_iters.dir/fig11c_balance_vs_iters.cpp.o"
  "CMakeFiles/fig11c_balance_vs_iters.dir/fig11c_balance_vs_iters.cpp.o.d"
  "fig11c_balance_vs_iters"
  "fig11c_balance_vs_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_balance_vs_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
