
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11c_balance_vs_iters.cpp" "bench/CMakeFiles/fig11c_balance_vs_iters.dir/fig11c_balance_vs_iters.cpp.o" "gcc" "bench/CMakeFiles/fig11c_balance_vs_iters.dir/fig11c_balance_vs_iters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gred_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/gred_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/gred_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/kad/CMakeFiles/gred_kad.dir/DependInfo.cmake"
  "/root/repo/build/src/sden/CMakeFiles/gred_sden.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gred_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/gred_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gred_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gred_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gred_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gred_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
