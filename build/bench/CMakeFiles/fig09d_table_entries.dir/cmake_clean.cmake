file(REMOVE_RECURSE
  "CMakeFiles/fig09d_table_entries.dir/fig09d_table_entries.cpp.o"
  "CMakeFiles/fig09d_table_entries.dir/fig09d_table_entries.cpp.o.d"
  "fig09d_table_entries"
  "fig09d_table_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09d_table_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
