# Empty compiler generated dependencies file for fig09d_table_entries.
# This may be replaced when dependencies are built.
