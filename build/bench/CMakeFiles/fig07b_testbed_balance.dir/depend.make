# Empty dependencies file for fig07b_testbed_balance.
# This may be replaced when dependencies are built.
