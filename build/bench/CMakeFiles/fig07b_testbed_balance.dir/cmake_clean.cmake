file(REMOVE_RECURSE
  "CMakeFiles/fig07b_testbed_balance.dir/fig07b_testbed_balance.cpp.o"
  "CMakeFiles/fig07b_testbed_balance.dir/fig07b_testbed_balance.cpp.o.d"
  "fig07b_testbed_balance"
  "fig07b_testbed_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_testbed_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
