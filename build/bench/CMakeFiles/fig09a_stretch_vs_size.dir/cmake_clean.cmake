file(REMOVE_RECURSE
  "CMakeFiles/fig09a_stretch_vs_size.dir/fig09a_stretch_vs_size.cpp.o"
  "CMakeFiles/fig09a_stretch_vs_size.dir/fig09a_stretch_vs_size.cpp.o.d"
  "fig09a_stretch_vs_size"
  "fig09a_stretch_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_stretch_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
