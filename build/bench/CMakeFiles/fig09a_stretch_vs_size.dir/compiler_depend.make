# Empty compiler generated dependencies file for fig09a_stretch_vs_size.
# This may be replaced when dependencies are built.
