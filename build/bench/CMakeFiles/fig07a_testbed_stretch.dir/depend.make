# Empty dependencies file for fig07a_testbed_stretch.
# This may be replaced when dependencies are built.
