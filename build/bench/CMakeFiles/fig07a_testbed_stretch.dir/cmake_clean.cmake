file(REMOVE_RECURSE
  "CMakeFiles/fig07a_testbed_stretch.dir/fig07a_testbed_stretch.cpp.o"
  "CMakeFiles/fig07a_testbed_stretch.dir/fig07a_testbed_stretch.cpp.o.d"
  "fig07a_testbed_stretch"
  "fig07a_testbed_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07a_testbed_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
