# Empty compiler generated dependencies file for fig11b_balance_vs_data.
# This may be replaced when dependencies are built.
