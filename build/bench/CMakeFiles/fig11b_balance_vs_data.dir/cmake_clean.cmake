file(REMOVE_RECURSE
  "CMakeFiles/fig11b_balance_vs_data.dir/fig11b_balance_vs_data.cpp.o"
  "CMakeFiles/fig11b_balance_vs_data.dir/fig11b_balance_vs_data.cpp.o.d"
  "fig11b_balance_vs_data"
  "fig11b_balance_vs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_balance_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
