file(REMOVE_RECURSE
  "CMakeFiles/fig08_response_delay.dir/fig08_response_delay.cpp.o"
  "CMakeFiles/fig08_response_delay.dir/fig08_response_delay.cpp.o.d"
  "fig08_response_delay"
  "fig08_response_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_response_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
