# Empty dependencies file for fig08_response_delay.
# This may be replaced when dependencies are built.
