file(REMOVE_RECURSE
  "CMakeFiles/fig09c_stretch_extension.dir/fig09c_stretch_extension.cpp.o"
  "CMakeFiles/fig09c_stretch_extension.dir/fig09c_stretch_extension.cpp.o.d"
  "fig09c_stretch_extension"
  "fig09c_stretch_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09c_stretch_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
