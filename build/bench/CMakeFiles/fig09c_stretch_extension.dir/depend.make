# Empty dependencies file for fig09c_stretch_extension.
# This may be replaced when dependencies are built.
