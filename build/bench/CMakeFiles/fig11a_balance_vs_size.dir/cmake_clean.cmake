file(REMOVE_RECURSE
  "CMakeFiles/fig11a_balance_vs_size.dir/fig11a_balance_vs_size.cpp.o"
  "CMakeFiles/fig11a_balance_vs_size.dir/fig11a_balance_vs_size.cpp.o.d"
  "fig11a_balance_vs_size"
  "fig11a_balance_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_balance_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
