# Empty dependencies file for fig11a_balance_vs_size.
# This may be replaced when dependencies are built.
