file(REMOVE_RECURSE
  "CMakeFiles/edge_cdn.dir/edge_cdn.cpp.o"
  "CMakeFiles/edge_cdn.dir/edge_cdn.cpp.o.d"
  "edge_cdn"
  "edge_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
