# Empty compiler generated dependencies file for network_dynamics.
# This may be replaced when dependencies are built.
