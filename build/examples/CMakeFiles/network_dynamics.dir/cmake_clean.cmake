file(REMOVE_RECURSE
  "CMakeFiles/network_dynamics.dir/network_dynamics.cpp.o"
  "CMakeFiles/network_dynamics.dir/network_dynamics.cpp.o.d"
  "network_dynamics"
  "network_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
