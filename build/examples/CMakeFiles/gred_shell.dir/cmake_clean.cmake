file(REMOVE_RECURSE
  "CMakeFiles/gred_shell.dir/gred_shell.cpp.o"
  "CMakeFiles/gred_shell.dir/gred_shell.cpp.o.d"
  "gred_shell"
  "gred_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
