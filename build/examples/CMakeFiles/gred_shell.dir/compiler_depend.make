# Empty compiler generated dependencies file for gred_shell.
# This may be replaced when dependencies are built.
