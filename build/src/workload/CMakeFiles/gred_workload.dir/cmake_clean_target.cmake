file(REMOVE_RECURSE
  "libgred_workload.a"
)
