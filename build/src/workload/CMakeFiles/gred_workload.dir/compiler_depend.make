# Empty compiler generated dependencies file for gred_workload.
# This may be replaced when dependencies are built.
