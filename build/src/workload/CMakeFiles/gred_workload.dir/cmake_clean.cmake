file(REMOVE_RECURSE
  "CMakeFiles/gred_workload.dir/arrivals.cpp.o"
  "CMakeFiles/gred_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/gred_workload.dir/generators.cpp.o"
  "CMakeFiles/gred_workload.dir/generators.cpp.o.d"
  "CMakeFiles/gred_workload.dir/zipf.cpp.o"
  "CMakeFiles/gred_workload.dir/zipf.cpp.o.d"
  "libgred_workload.a"
  "libgred_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
