
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/data_key.cpp" "src/crypto/CMakeFiles/gred_crypto.dir/data_key.cpp.o" "gcc" "src/crypto/CMakeFiles/gred_crypto.dir/data_key.cpp.o.d"
  "/root/repo/src/crypto/hex.cpp" "src/crypto/CMakeFiles/gred_crypto.dir/hex.cpp.o" "gcc" "src/crypto/CMakeFiles/gred_crypto.dir/hex.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/gred_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/gred_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
