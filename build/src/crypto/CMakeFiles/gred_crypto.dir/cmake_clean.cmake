file(REMOVE_RECURSE
  "CMakeFiles/gred_crypto.dir/data_key.cpp.o"
  "CMakeFiles/gred_crypto.dir/data_key.cpp.o.d"
  "CMakeFiles/gred_crypto.dir/hex.cpp.o"
  "CMakeFiles/gred_crypto.dir/hex.cpp.o.d"
  "CMakeFiles/gred_crypto.dir/sha256.cpp.o"
  "CMakeFiles/gred_crypto.dir/sha256.cpp.o.d"
  "libgred_crypto.a"
  "libgred_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
