# Empty dependencies file for gred_crypto.
# This may be replaced when dependencies are built.
