file(REMOVE_RECURSE
  "libgred_crypto.a"
)
