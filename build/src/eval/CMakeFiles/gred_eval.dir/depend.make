# Empty dependencies file for gred_eval.
# This may be replaced when dependencies are built.
