file(REMOVE_RECURSE
  "libgred_eval.a"
)
