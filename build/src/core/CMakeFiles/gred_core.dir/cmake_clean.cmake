file(REMOVE_RECURSE
  "CMakeFiles/gred_core.dir/controller.cpp.o"
  "CMakeFiles/gred_core.dir/controller.cpp.o.d"
  "CMakeFiles/gred_core.dir/delay_experiment.cpp.o"
  "CMakeFiles/gred_core.dir/delay_experiment.cpp.o.d"
  "CMakeFiles/gred_core.dir/metrics.cpp.o"
  "CMakeFiles/gred_core.dir/metrics.cpp.o.d"
  "CMakeFiles/gred_core.dir/multihop_dt.cpp.o"
  "CMakeFiles/gred_core.dir/multihop_dt.cpp.o.d"
  "CMakeFiles/gred_core.dir/protocol.cpp.o"
  "CMakeFiles/gred_core.dir/protocol.cpp.o.d"
  "CMakeFiles/gred_core.dir/snapshot.cpp.o"
  "CMakeFiles/gred_core.dir/snapshot.cpp.o.d"
  "CMakeFiles/gred_core.dir/system.cpp.o"
  "CMakeFiles/gred_core.dir/system.cpp.o.d"
  "CMakeFiles/gred_core.dir/virtual_space.cpp.o"
  "CMakeFiles/gred_core.dir/virtual_space.cpp.o.d"
  "CMakeFiles/gred_core.dir/vivaldi.cpp.o"
  "CMakeFiles/gred_core.dir/vivaldi.cpp.o.d"
  "libgred_core.a"
  "libgred_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
