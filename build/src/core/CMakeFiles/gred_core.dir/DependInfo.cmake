
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/gred_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/delay_experiment.cpp" "src/core/CMakeFiles/gred_core.dir/delay_experiment.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/delay_experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/gred_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/multihop_dt.cpp" "src/core/CMakeFiles/gred_core.dir/multihop_dt.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/multihop_dt.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/gred_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/gred_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/snapshot.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/gred_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/system.cpp.o.d"
  "/root/repo/src/core/virtual_space.cpp" "src/core/CMakeFiles/gred_core.dir/virtual_space.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/virtual_space.cpp.o.d"
  "/root/repo/src/core/vivaldi.cpp" "src/core/CMakeFiles/gred_core.dir/vivaldi.cpp.o" "gcc" "src/core/CMakeFiles/gred_core.dir/vivaldi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sden/CMakeFiles/gred_sden.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/gred_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gred_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/gred_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gred_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gred_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gred_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
