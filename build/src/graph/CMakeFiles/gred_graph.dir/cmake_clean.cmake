file(REMOVE_RECURSE
  "CMakeFiles/gred_graph.dir/graph.cpp.o"
  "CMakeFiles/gred_graph.dir/graph.cpp.o.d"
  "CMakeFiles/gred_graph.dir/properties.cpp.o"
  "CMakeFiles/gred_graph.dir/properties.cpp.o.d"
  "CMakeFiles/gred_graph.dir/shortest_path.cpp.o"
  "CMakeFiles/gred_graph.dir/shortest_path.cpp.o.d"
  "libgred_graph.a"
  "libgred_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
