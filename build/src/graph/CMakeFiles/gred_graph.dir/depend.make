# Empty dependencies file for gred_graph.
# This may be replaced when dependencies are built.
