file(REMOVE_RECURSE
  "libgred_graph.a"
)
