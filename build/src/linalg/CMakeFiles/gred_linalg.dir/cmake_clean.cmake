file(REMOVE_RECURSE
  "CMakeFiles/gred_linalg.dir/eigen.cpp.o"
  "CMakeFiles/gred_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/gred_linalg.dir/matrix.cpp.o"
  "CMakeFiles/gred_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/gred_linalg.dir/mds.cpp.o"
  "CMakeFiles/gred_linalg.dir/mds.cpp.o.d"
  "libgred_linalg.a"
  "libgred_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
