# Empty dependencies file for gred_linalg.
# This may be replaced when dependencies are built.
