file(REMOVE_RECURSE
  "libgred_linalg.a"
)
