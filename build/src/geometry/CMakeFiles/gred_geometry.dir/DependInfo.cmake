
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/convex_hull.cpp" "src/geometry/CMakeFiles/gred_geometry.dir/convex_hull.cpp.o" "gcc" "src/geometry/CMakeFiles/gred_geometry.dir/convex_hull.cpp.o.d"
  "/root/repo/src/geometry/cvt.cpp" "src/geometry/CMakeFiles/gred_geometry.dir/cvt.cpp.o" "gcc" "src/geometry/CMakeFiles/gred_geometry.dir/cvt.cpp.o.d"
  "/root/repo/src/geometry/delaunay.cpp" "src/geometry/CMakeFiles/gred_geometry.dir/delaunay.cpp.o" "gcc" "src/geometry/CMakeFiles/gred_geometry.dir/delaunay.cpp.o.d"
  "/root/repo/src/geometry/predicates.cpp" "src/geometry/CMakeFiles/gred_geometry.dir/predicates.cpp.o" "gcc" "src/geometry/CMakeFiles/gred_geometry.dir/predicates.cpp.o.d"
  "/root/repo/src/geometry/voronoi.cpp" "src/geometry/CMakeFiles/gred_geometry.dir/voronoi.cpp.o" "gcc" "src/geometry/CMakeFiles/gred_geometry.dir/voronoi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
