# Empty compiler generated dependencies file for gred_geometry.
# This may be replaced when dependencies are built.
