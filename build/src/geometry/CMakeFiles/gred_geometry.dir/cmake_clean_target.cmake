file(REMOVE_RECURSE
  "libgred_geometry.a"
)
