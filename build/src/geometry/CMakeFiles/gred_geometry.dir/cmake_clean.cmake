file(REMOVE_RECURSE
  "CMakeFiles/gred_geometry.dir/convex_hull.cpp.o"
  "CMakeFiles/gred_geometry.dir/convex_hull.cpp.o.d"
  "CMakeFiles/gred_geometry.dir/cvt.cpp.o"
  "CMakeFiles/gred_geometry.dir/cvt.cpp.o.d"
  "CMakeFiles/gred_geometry.dir/delaunay.cpp.o"
  "CMakeFiles/gred_geometry.dir/delaunay.cpp.o.d"
  "CMakeFiles/gred_geometry.dir/predicates.cpp.o"
  "CMakeFiles/gred_geometry.dir/predicates.cpp.o.d"
  "CMakeFiles/gred_geometry.dir/voronoi.cpp.o"
  "CMakeFiles/gred_geometry.dir/voronoi.cpp.o.d"
  "libgred_geometry.a"
  "libgred_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
