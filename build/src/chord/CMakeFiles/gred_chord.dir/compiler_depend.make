# Empty compiler generated dependencies file for gred_chord.
# This may be replaced when dependencies are built.
