file(REMOVE_RECURSE
  "CMakeFiles/gred_chord.dir/chord.cpp.o"
  "CMakeFiles/gred_chord.dir/chord.cpp.o.d"
  "CMakeFiles/gred_chord.dir/underlay.cpp.o"
  "CMakeFiles/gred_chord.dir/underlay.cpp.o.d"
  "libgred_chord.a"
  "libgred_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
