file(REMOVE_RECURSE
  "libgred_chord.a"
)
