# Empty compiler generated dependencies file for gred_sden.
# This may be replaced when dependencies are built.
