file(REMOVE_RECURSE
  "libgred_sden.a"
)
