file(REMOVE_RECURSE
  "CMakeFiles/gred_sden.dir/event_queue.cpp.o"
  "CMakeFiles/gred_sden.dir/event_queue.cpp.o.d"
  "CMakeFiles/gred_sden.dir/flow_table.cpp.o"
  "CMakeFiles/gred_sden.dir/flow_table.cpp.o.d"
  "CMakeFiles/gred_sden.dir/network.cpp.o"
  "CMakeFiles/gred_sden.dir/network.cpp.o.d"
  "CMakeFiles/gred_sden.dir/p4_pipeline.cpp.o"
  "CMakeFiles/gred_sden.dir/p4_pipeline.cpp.o.d"
  "CMakeFiles/gred_sden.dir/server_node.cpp.o"
  "CMakeFiles/gred_sden.dir/server_node.cpp.o.d"
  "CMakeFiles/gred_sden.dir/switch.cpp.o"
  "CMakeFiles/gred_sden.dir/switch.cpp.o.d"
  "libgred_sden.a"
  "libgred_sden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_sden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
