
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sden/event_queue.cpp" "src/sden/CMakeFiles/gred_sden.dir/event_queue.cpp.o" "gcc" "src/sden/CMakeFiles/gred_sden.dir/event_queue.cpp.o.d"
  "/root/repo/src/sden/flow_table.cpp" "src/sden/CMakeFiles/gred_sden.dir/flow_table.cpp.o" "gcc" "src/sden/CMakeFiles/gred_sden.dir/flow_table.cpp.o.d"
  "/root/repo/src/sden/network.cpp" "src/sden/CMakeFiles/gred_sden.dir/network.cpp.o" "gcc" "src/sden/CMakeFiles/gred_sden.dir/network.cpp.o.d"
  "/root/repo/src/sden/p4_pipeline.cpp" "src/sden/CMakeFiles/gred_sden.dir/p4_pipeline.cpp.o" "gcc" "src/sden/CMakeFiles/gred_sden.dir/p4_pipeline.cpp.o.d"
  "/root/repo/src/sden/server_node.cpp" "src/sden/CMakeFiles/gred_sden.dir/server_node.cpp.o" "gcc" "src/sden/CMakeFiles/gred_sden.dir/server_node.cpp.o.d"
  "/root/repo/src/sden/switch.cpp" "src/sden/CMakeFiles/gred_sden.dir/switch.cpp.o" "gcc" "src/sden/CMakeFiles/gred_sden.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/gred_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/gred_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gred_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gred_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gred_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
