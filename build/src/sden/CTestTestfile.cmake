# CMake generated Testfile for 
# Source directory: /root/repo/src/sden
# Build directory: /root/repo/build/src/sden
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
