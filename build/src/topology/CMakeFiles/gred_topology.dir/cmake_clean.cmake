file(REMOVE_RECURSE
  "CMakeFiles/gred_topology.dir/edge_network.cpp.o"
  "CMakeFiles/gred_topology.dir/edge_network.cpp.o.d"
  "CMakeFiles/gred_topology.dir/presets.cpp.o"
  "CMakeFiles/gred_topology.dir/presets.cpp.o.d"
  "CMakeFiles/gred_topology.dir/waxman.cpp.o"
  "CMakeFiles/gred_topology.dir/waxman.cpp.o.d"
  "libgred_topology.a"
  "libgred_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
