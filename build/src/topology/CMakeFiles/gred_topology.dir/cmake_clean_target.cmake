file(REMOVE_RECURSE
  "libgred_topology.a"
)
