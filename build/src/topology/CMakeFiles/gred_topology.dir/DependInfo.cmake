
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/edge_network.cpp" "src/topology/CMakeFiles/gred_topology.dir/edge_network.cpp.o" "gcc" "src/topology/CMakeFiles/gred_topology.dir/edge_network.cpp.o.d"
  "/root/repo/src/topology/presets.cpp" "src/topology/CMakeFiles/gred_topology.dir/presets.cpp.o" "gcc" "src/topology/CMakeFiles/gred_topology.dir/presets.cpp.o.d"
  "/root/repo/src/topology/waxman.cpp" "src/topology/CMakeFiles/gred_topology.dir/waxman.cpp.o" "gcc" "src/topology/CMakeFiles/gred_topology.dir/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gred_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/gred_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gred_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
