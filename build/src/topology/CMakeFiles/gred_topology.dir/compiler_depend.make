# Empty compiler generated dependencies file for gred_topology.
# This may be replaced when dependencies are built.
