file(REMOVE_RECURSE
  "CMakeFiles/gred_common.dir/log.cpp.o"
  "CMakeFiles/gred_common.dir/log.cpp.o.d"
  "CMakeFiles/gred_common.dir/rng.cpp.o"
  "CMakeFiles/gred_common.dir/rng.cpp.o.d"
  "CMakeFiles/gred_common.dir/stats.cpp.o"
  "CMakeFiles/gred_common.dir/stats.cpp.o.d"
  "CMakeFiles/gred_common.dir/strings.cpp.o"
  "CMakeFiles/gred_common.dir/strings.cpp.o.d"
  "CMakeFiles/gred_common.dir/table.cpp.o"
  "CMakeFiles/gred_common.dir/table.cpp.o.d"
  "libgred_common.a"
  "libgred_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
