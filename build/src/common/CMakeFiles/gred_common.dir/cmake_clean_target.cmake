file(REMOVE_RECURSE
  "libgred_common.a"
)
