# Empty dependencies file for gred_common.
# This may be replaced when dependencies are built.
