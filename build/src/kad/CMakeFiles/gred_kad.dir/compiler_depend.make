# Empty compiler generated dependencies file for gred_kad.
# This may be replaced when dependencies are built.
