file(REMOVE_RECURSE
  "libgred_kad.a"
)
