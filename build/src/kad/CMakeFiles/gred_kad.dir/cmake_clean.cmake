file(REMOVE_RECURSE
  "CMakeFiles/gred_kad.dir/kademlia.cpp.o"
  "CMakeFiles/gred_kad.dir/kademlia.cpp.o.d"
  "libgred_kad.a"
  "libgred_kad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_kad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
