# CMake generated Testfile for 
# Source directory: /root/repo/src/kad
# Build directory: /root/repo/build/src/kad
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
