file(REMOVE_RECURSE
  "CMakeFiles/kademlia_test.dir/kademlia_test.cpp.o"
  "CMakeFiles/kademlia_test.dir/kademlia_test.cpp.o.d"
  "kademlia_test"
  "kademlia_test.pdb"
  "kademlia_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kademlia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
