# Empty dependencies file for kademlia_test.
# This may be replaced when dependencies are built.
