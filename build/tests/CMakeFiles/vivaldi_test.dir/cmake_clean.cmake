file(REMOVE_RECURSE
  "CMakeFiles/vivaldi_test.dir/vivaldi_test.cpp.o"
  "CMakeFiles/vivaldi_test.dir/vivaldi_test.cpp.o.d"
  "vivaldi_test"
  "vivaldi_test.pdb"
  "vivaldi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vivaldi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
