# Empty compiler generated dependencies file for sden_test.
# This may be replaced when dependencies are built.
