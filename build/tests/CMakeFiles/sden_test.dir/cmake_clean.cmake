file(REMOVE_RECURSE
  "CMakeFiles/sden_test.dir/sden_test.cpp.o"
  "CMakeFiles/sden_test.dir/sden_test.cpp.o.d"
  "sden_test"
  "sden_test.pdb"
  "sden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
