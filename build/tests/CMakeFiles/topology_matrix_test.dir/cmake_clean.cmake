file(REMOVE_RECURSE
  "CMakeFiles/topology_matrix_test.dir/topology_matrix_test.cpp.o"
  "CMakeFiles/topology_matrix_test.dir/topology_matrix_test.cpp.o.d"
  "topology_matrix_test"
  "topology_matrix_test.pdb"
  "topology_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
