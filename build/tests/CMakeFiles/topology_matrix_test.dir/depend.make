# Empty dependencies file for topology_matrix_test.
# This may be replaced when dependencies are built.
