file(REMOVE_RECURSE
  "CMakeFiles/p4_pipeline_test.dir/p4_pipeline_test.cpp.o"
  "CMakeFiles/p4_pipeline_test.dir/p4_pipeline_test.cpp.o.d"
  "p4_pipeline_test"
  "p4_pipeline_test.pdb"
  "p4_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
