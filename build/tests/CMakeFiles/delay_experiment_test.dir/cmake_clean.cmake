file(REMOVE_RECURSE
  "CMakeFiles/delay_experiment_test.dir/delay_experiment_test.cpp.o"
  "CMakeFiles/delay_experiment_test.dir/delay_experiment_test.cpp.o.d"
  "delay_experiment_test"
  "delay_experiment_test.pdb"
  "delay_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
