# Empty compiler generated dependencies file for delay_experiment_test.
# This may be replaced when dependencies are built.
