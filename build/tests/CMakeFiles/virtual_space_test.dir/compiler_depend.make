# Empty compiler generated dependencies file for virtual_space_test.
# This may be replaced when dependencies are built.
