file(REMOVE_RECURSE
  "CMakeFiles/virtual_space_test.dir/virtual_space_test.cpp.o"
  "CMakeFiles/virtual_space_test.dir/virtual_space_test.cpp.o.d"
  "virtual_space_test"
  "virtual_space_test.pdb"
  "virtual_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
