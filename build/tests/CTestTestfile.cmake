# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/delaunay_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/chord_test[1]_include.cmake")
include("/root/repo/build/tests/sden_test[1]_include.cmake")
include("/root/repo/build/tests/virtual_space_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/delay_experiment_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/p4_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/vivaldi_test[1]_include.cmake")
include("/root/repo/build/tests/kademlia_test[1]_include.cmake")
include("/root/repo/build/tests/topology_matrix_test[1]_include.cmake")
